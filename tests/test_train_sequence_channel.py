"""Tests for the single-system train-sequence measurement procedure."""

import numpy as np
import pytest

from repro.core.dispersion import TrainMeasurement
from repro.core.estimators import train_dispersion_rate
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain, TrainSequence


@pytest.fixture
def channel():
    return SimulatedWlanChannel(
        [("cross", PoissonGenerator(2.5e6, 1500))], warmup=0.1)


@pytest.fixture
def sequence():
    return TrainSequence(ProbeTrain.at_rate(8, 5e6), m=6,
                         mean_spacing=0.05, guard=0.02)


class TestSendTrainSequence:
    def test_returns_m_results(self, channel, sequence):
        raws = channel.send_train_sequence(sequence, seed=1)
        assert len(raws) == sequence.m
        assert all(len(r.send_times) == sequence.train.n for r in raws)

    def test_trains_are_time_ordered(self, channel, sequence):
        raws = channel.send_train_sequence(sequence, seed=2)
        for prev, cur in zip(raws, raws[1:]):
            assert cur.send_times[0] > prev.send_times[-1]

    def test_intra_train_gaps_match(self, channel, sequence):
        raws = channel.send_train_sequence(sequence, seed=3)
        for raw in raws:
            assert np.allclose(np.diff(raw.send_times),
                               sequence.train.gap)

    def test_reproducible(self, channel, sequence):
        a = channel.send_train_sequence(sequence, seed=4)
        b = channel.send_train_sequence(sequence, seed=4)
        assert np.array_equal(a[-1].recv_times, b[-1].recv_times)

    def test_each_train_shows_transient(self, channel):
        """Poisson spacing lets the system forget: every train's first
        packet is accelerated again."""
        sequence = TrainSequence(ProbeTrain.at_rate(30, 6e6), m=5,
                                 mean_spacing=0.2, guard=0.1)
        first = []
        later = []
        for seed in range(25):
            for raw in channel.send_train_sequence(sequence, seed=seed):
                first.append(raw.access_delays[0])
                later.append(raw.access_delays[-5:].mean())
        assert np.mean(first) < 0.9 * np.mean(later)

    def test_consistent_with_independent_repetitions(self, channel):
        """The limiting dispersion matches the independent-reps path."""
        train = ProbeTrain.at_rate(20, 8e6)
        sequence = TrainSequence(train, m=12, mean_spacing=0.15,
                                 guard=0.05)
        seq_raws = []
        for seed in range(8):
            seq_raws.extend(channel.send_train_sequence(sequence,
                                                        seed=seed))
        ind_raws = channel.send_trains(train, len(seq_raws), seed=99)

        def rate(raws):
            measurements = [TrainMeasurement(r.send_times, r.recv_times,
                                             r.size_bytes) for r in raws]
            return train_dispersion_rate(measurements)

        assert rate(seq_raws) == pytest.approx(rate(ind_raws), rel=0.1)
