"""Tests for the sweep/run-all progress journal (repro.runtime.manifest)."""

import json

import pytest

from repro.runtime.manifest import (
    Manifest,
    ManifestError,
    PointRecord,
    point_id,
)


@pytest.fixture
def manifest(tmp_path):
    return Manifest.create(tmp_path / "sweep.jsonl", "sweep", "fig6",
                           invocation={"scale": 1.0, "seed": 2})


class TestPointId:
    def test_stable_across_kwarg_order(self):
        assert point_id("fig6", {"a": 1, "b": 2}) == \
            point_id("fig6", {"b": 2, "a": 1})

    def test_kwargs_change_id(self):
        assert point_id("fig6", {"a": 1}) != point_id("fig6", {"a": 2})

    def test_experiment_changes_id(self):
        assert point_id("fig6", {"a": 1}) != point_id("fig7", {"a": 1})

    def test_numpy_scalars_canonical(self):
        import numpy as np
        assert point_id("e", {"n": np.int64(5)}) == \
            point_id("e", {"n": 5})


class TestCreateAndLoad:
    def test_create_publishes_header_atomically(self, manifest):
        # No temp droppings, one well-formed header line.
        assert list(manifest.path.parent.glob("*.tmp")) == []
        lines = manifest.path.read_text().splitlines()
        assert len(lines) == 1
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["command"] == "sweep"
        assert header["experiment"] == "fig6"

    def test_round_trip(self, manifest):
        pid = point_id("fig6", {"repetitions": 4})
        manifest.record(PointRecord(point_id=pid, status="done",
                                    label="repetitions=4",
                                    cache_key="abc123"))
        loaded = Manifest.load(manifest.path)
        record = loaded.get(pid)
        assert record is not None
        assert record.status == "done"
        assert record.cache_key == "abc123"
        assert record.label == "repetitions=4"

    def test_last_record_wins(self, manifest):
        pid = point_id("fig6", {"repetitions": 4})
        manifest.record(PointRecord(point_id=pid, status="error",
                                    error="boom"))
        manifest.record(PointRecord(point_id=pid, status="done",
                                    cache_key="k"))
        loaded = Manifest.load(manifest.path)
        assert loaded.get(pid).status == "done"

    def test_counts(self, manifest):
        manifest.record(PointRecord(point_id="a", status="done"))
        manifest.record(PointRecord(point_id="b", status="failed"))
        manifest.record(PointRecord(point_id="c", status="error"))
        assert Manifest.load(manifest.path).counts() == {
            "done": 1, "failed": 1, "error": 1}

    def test_create_replaces_existing_journal(self, tmp_path):
        path = tmp_path / "m.jsonl"
        first = Manifest.create(path, "sweep", "fig6")
        first.record(PointRecord(point_id="x", status="done"))
        fresh = Manifest.create(path, "sweep", "fig6")
        assert fresh.records == {}
        assert Manifest.load(path).records == {}


class TestTornTail:
    """The one kind of damage a crash can cause, given O_APPEND lines."""

    def test_torn_final_line_without_newline_dropped(self, manifest):
        pid = point_id("fig6", {"repetitions": 4})
        manifest.record(PointRecord(point_id=pid, status="done"))
        with open(manifest.path, "a") as handle:
            handle.write('{"kind": "point", "point_id": "t, TORN')
        loaded = Manifest.load(manifest.path)
        assert loaded.get(pid).status == "done"
        assert len(loaded.records) == 1

    def test_torn_final_line_with_newline_dropped(self, manifest):
        manifest.record(PointRecord(point_id="a", status="done"))
        with open(manifest.path, "a") as handle:
            handle.write('{"kind": "po\n')
        loaded = Manifest.load(manifest.path)
        assert set(loaded.records) == {"a"}

    def test_torn_header_is_an_error(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "head')
        with pytest.raises(ManifestError, match="no header"):
            Manifest.load(path)

    def test_interior_garbage_is_an_error(self, manifest):
        with open(manifest.path, "a") as handle:
            handle.write("garbage, not json\n")
            handle.write(PointRecord(point_id="a",
                                     status="done").to_json() + "\n")
        with pytest.raises(ManifestError, match="not JSON"):
            Manifest.load(manifest.path)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ManifestError, match="cannot read"):
            Manifest.load(tmp_path / "nowhere.jsonl")

    def test_header_required(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "point", "point_id": "a", '
                        '"status": "done"}\n')
        with pytest.raises(ManifestError, match="no header"):
            Manifest.load(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        path.write_text('{"kind": "header", "manifest_version": 99, '
                        '"command": "sweep", "experiment": "fig6"}\n')
        with pytest.raises(ManifestError, match="version"):
            Manifest.load(path)

    def test_unknown_status_rejected(self, manifest):
        with open(manifest.path, "a") as handle:
            handle.write('{"kind": "point", "point_id": "a", '
                         '"status": "maybe"}\n')
            handle.write('{"kind": "point", "point_id": "b", '
                         '"status": "done"}\n')
        with pytest.raises(ManifestError, match="status"):
            Manifest.load(manifest.path)

    def test_require_matches(self, manifest):
        loaded = Manifest.load(manifest.path)
        loaded.require("sweep", "fig6")
        with pytest.raises(ManifestError, match="refusing to resume"):
            loaded.require("sweep", "fig7")
        with pytest.raises(ManifestError, match="refusing to resume"):
            loaded.require("run", "fig6")

    def test_record_rejects_unknown_status(self, manifest):
        with pytest.raises(ValueError, match="status"):
            manifest.record(PointRecord(point_id="a", status="shrug"))
