"""Tests for the capability-based backend dispatcher (repro.backends).

The load-bearing guarantees:

* resolution is a pure function of ``(spec, requested)`` — the same
  backend is picked under any ambient job count;
* ``auto`` prefers kernels, falls back to the event engine with a
  *recorded* structured reason, and forcing ``vector`` on an
  ineligible scenario raises with the capability mismatches attached;
* the registry derives coverage from declared scenarios, resolves
  ``auto`` before kwargs materialisation (cache keys name the
  resolved backend), and lands fallback reasons in result meta;
* the CLI default is ``auto`` and ``run --explain-backend`` prints
  decisions without running anything.
"""

import numpy as np
import pytest

from repro.backends import (
    BackendUnavailableError,
    Capabilities,
    EVENT,
    ScenarioSpec,
    dispatch,
    eligible,
    explain,
    family_names,
    resolve,
    vector_mismatch_reason,
)
from repro.cli import main
from repro.runtime import executor, registry
from repro.runtime.cache import ResultCache
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import CBRGenerator, PoissonGenerator

WLAN_TRAIN = ScenarioSpec(system="wlan", workload="train",
                          cross_traffic="poisson")


TRACE_DETAIL = ("cross station 'replay': TraceGenerator has no batched "
                "arrival sampler; run this scenario with backend='event'")


def _trace_replay_runner(seed=0, repetitions=2):
    """A tiny runner whose scenario no kernel can model (trace replay)."""
    from repro.analysis.results import ExperimentResult
    return ExperimentResult(
        experiment="t-trace", title="trace-replay stub",
        x_label="idx", x=np.arange(repetitions, dtype=float),
        series={"value": np.full(repetitions, float(seed))},
        meta={})


def _event_only_experiment():
    """An experiment that is still event-only after this PR: trace
    replay has no batched arrival sampler, so ``auto`` must fall back
    (and forcing ``vector`` must raise) — the one mismatch the
    registry's builtin experiments no longer exercise now that retry
    limits and on-off traffic are vectorized."""
    return registry.Experiment(
        name="t-trace", runner=_trace_replay_runner,
        scalable={"repetitions": 2},
        scenario=ScenarioSpec(system="wlan", workload="train",
                              cross_traffic="other",
                              cross_detail=TRACE_DETAIL))


class TestScenarioSpec:
    def test_defaults(self):
        spec = ScenarioSpec()
        assert spec.system == "wlan" and spec.workload == "train"

    def test_rejects_unknown_values(self):
        with pytest.raises(ValueError, match="unknown system"):
            ScenarioSpec(system="quantum")
        with pytest.raises(ValueError, match="unknown workload"):
            ScenarioSpec(workload="quantum")
        with pytest.raises(ValueError, match="unknown cross_traffic"):
            ScenarioSpec(cross_traffic="quantum")

    def test_mismatch_order_is_stable(self):
        """The first mismatch names the leading reason — the channel
        layer's legacy strings depend on the order."""
        caps = Capabilities(rts_cts=False, retry_limit=False,
                            queue_traces=False)
        spec = ScenarioSpec(queue_traces=True, rts_cts=True,
                            retry_limit=True)
        found = caps.mismatches(spec)
        assert [m.capability for m in found] == [
            "queue_traces", "rts_cts", "retry_limit"]
        assert str(found[0]) == "queue traces require the event engine"


class TestResolve:
    def test_auto_prefers_kernel(self):
        resolution = resolve(WLAN_TRAIN, "auto")
        assert resolution.name == "vector"
        assert resolution.kernel == "probe-train kernel"
        assert resolution.fallback is None

    def test_auto_falls_back_with_reason(self):
        spec = ScenarioSpec(system="wlan", workload="train",
                            cross_traffic="other",
                            cross_detail=TRACE_DETAIL)
        resolution = resolve(spec, "auto")
        assert resolution.backend is EVENT
        assert resolution.fallback == TRACE_DETAIL

    def test_event_never_records_fallback(self):
        resolution = resolve(WLAN_TRAIN, "event")
        assert resolution.backend is EVENT
        assert resolution.fallback is None

    def test_forced_vector_raises_structured(self):
        spec = ScenarioSpec(system="wlan", workload="train",
                            cross_traffic="other",
                            cross_detail=TRACE_DETAIL)
        with pytest.raises(BackendUnavailableError,
                           match="no batched arrival sampler") as err:
            resolve(spec, "vector")
        mismatches = err.value.mismatches["probe-train kernel"]
        assert any(m.capability == "cross_traffic" for m in mismatches)

    def test_rts_queue_traces_and_cbr_now_dispatch_to_kernels(self):
        """PR 5's tentpole: the former fallback reasons are gone."""
        for spec in (
            ScenarioSpec(system="wlan", workload="train",
                         cross_traffic="poisson", rts_cts=True),
            ScenarioSpec(system="wlan", workload="train",
                         cross_traffic="poisson", queue_traces=True),
            ScenarioSpec(system="wlan", workload="steady-cbr",
                         cross_traffic="cbr"),
            ScenarioSpec(system="wlan", workload="train",
                         cross_traffic="mixed"),
        ):
            resolution = resolve(spec, "auto")
            assert resolution.kernel == "probe-train kernel", spec
        path = resolve(ScenarioSpec(system="path", workload="train",
                                    cross_traffic="poisson"), "auto")
        assert path.kernel == "multihop chain kernel"
        saturated_rts = resolve(
            ScenarioSpec(system="wlan", workload="saturated",
                         rts_cts=True), "auto")
        assert saturated_rts.kernel == "saturated-DCF kernel"

    def test_retry_limit_and_onoff_now_dispatch_to_kernels(self):
        """This PR's tentpole: the last two guarded capabilities —
        retry-limited transmissions and on-off cross-traffic — have
        batched kernels, so no fallback reason is recorded."""
        for spec, kernel in (
            (ScenarioSpec(system="wlan", workload="train",
                          cross_traffic="poisson", retry_limit=True),
             "probe-train kernel"),
            (ScenarioSpec(system="wlan", workload="train",
                          cross_traffic="onoff"), "probe-train kernel"),
            (ScenarioSpec(system="wlan", workload="train",
                          cross_traffic="onoff", fifo_cross="onoff",
                          retry_limit=True), "probe-train kernel"),
            (ScenarioSpec(system="wlan", workload="saturated",
                          retry_limit=True), "saturated-DCF kernel"),
            (ScenarioSpec(system="path", workload="train",
                          cross_traffic="onoff", retry_limit=True),
             "multihop chain kernel"),
        ):
            resolution = resolve(spec, "auto")
            assert resolution.kernel == kernel, spec
            assert resolution.fallback is None, spec

    def test_forced_vector_retry_mismatch_raises_with_detail(self):
        """Regression for the pre-kernel failure mode: forcing
        ``vector`` on a retry-limited scenario a kernel cannot model
        must raise the structured error with the retry detail attached
        — never reach (and crash) the kernel.  The WLAN kernels now
        support retry caps, so the batched Lindley recursion (which
        does not) keeps this path honest."""
        spec = ScenarioSpec(system="fifo", workload="train",
                            retry_limit=True)
        with pytest.raises(BackendUnavailableError,
                           match="no vector kernel supports") as err:
            resolve(spec, "vector")
        mismatches = err.value.mismatches["batched Lindley recursion"]
        assert [m.capability for m in mismatches] == ["retry_limit"]
        assert mismatches[0].detail == \
            "a retry limit requires the event engine"
        assert resolve(spec, "auto").backend is EVENT

    def test_unknown_request_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve(WLAN_TRAIN, "quantum")

    def test_none_spec_is_event_only(self):
        resolution = resolve(None, "auto")
        assert resolution.backend is EVENT
        assert resolution.fallback
        with pytest.raises(BackendUnavailableError):
            resolve(None, "vector")

    def test_kernel_per_system(self):
        assert resolve(ScenarioSpec(system="fifo"), "auto").kernel == \
            "batched Lindley recursion"
        assert resolve(ScenarioSpec(workload="saturated",
                                    cross_traffic="none"),
                       "auto").kernel == "saturated-DCF kernel"

    def test_family_names(self):
        assert family_names(WLAN_TRAIN) == ("event", "vector", "jit")
        assert family_names(ScenarioSpec(system="other",
                                         workload="other",
                                         cross_traffic="other")) \
            == ("event",)
        assert eligible(WLAN_TRAIN)[-1] is EVENT

    def test_deterministic_across_jobs(self):
        """Resolution ignores the ambient worker-pool scope."""
        outcomes = []
        for jobs in (1, 4, 8):
            with executor.parallel_jobs(jobs):
                outcomes.append(resolve(WLAN_TRAIN, "auto").kernel)
        assert len(set(outcomes)) == 1

    def test_explain_renders_decision_and_rejections(self):
        text = explain(ScenarioSpec(system="fifo"), "auto")
        assert "batched Lindley recursion" in text
        assert "probe-train kernel" in text  # rejected, with reason
        forced = explain(ScenarioSpec(system="other", workload="other",
                                      cross_traffic="other"), "vector")
        assert "ERROR" in forced


class TestChannelIntegration:
    def test_wlan_spec_compiled_from_configuration(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))],
            fifo_cross=PoissonGenerator(1e6, 1500),
            rts_threshold=500, retry_limit=4, log_cross_queues=True)
        spec = channel.scenario_spec()
        assert spec.cross_traffic == "poisson"
        assert spec.fifo_cross == "poisson"
        assert spec.rts_cts and spec.retry_limit and spec.queue_traces

    def test_cbr_cross_now_compiles_and_dispatches(self):
        channel = SimulatedWlanChannel([("cbr", CBRGenerator(2e6, 1500))])
        spec = channel.scenario_spec()
        assert spec.cross_traffic == "cbr"
        assert vector_mismatch_reason(spec) is None
        mixed = SimulatedWlanChannel([
            ("cbr", CBRGenerator(2e6, 1500)),
            ("poisson", PoissonGenerator(1e6, 1500))])
        assert mixed.scenario_spec().cross_traffic == "mixed"
        assert mixed.vector_unsupported_reason() is None

    def test_onoff_cross_compiles_and_dispatches(self):
        from repro.traffic.generators import OnOffGenerator
        channel = SimulatedWlanChannel(
            [("burst", OnOffGenerator(4e6, 0.1, 0.1, 1500))])
        spec = channel.scenario_spec()
        assert spec.cross_traffic == "onoff"
        assert vector_mismatch_reason(spec) is None
        assert channel.vector_unsupported_reason() is None

    def test_retry_limit_compiles_and_dispatches(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], retry_limit=4)
        spec = channel.scenario_spec()
        assert spec.retry_limit
        assert vector_mismatch_reason(spec) is None
        assert channel.resolve_backend("auto").name == "vector"

    def test_trace_cross_disqualifies_with_detail(self):
        from repro.traffic.generators import TraceGenerator
        channel = SimulatedWlanChannel(
            [("replay", TraceGenerator([(0.1, 1500), (0.2, 1500)]))])
        spec = channel.scenario_spec()
        assert spec.cross_traffic == "other"
        reason = vector_mismatch_reason(spec)
        assert "cross station 'replay'" in reason
        assert channel.vector_unsupported_reason() == reason

    def test_fifo_size_mismatch_falls_back_instead_of_crashing(self):
        """auto must never pick a kernel that will refuse the batch:
        FIFO cross-traffic at a different packet size than the probe
        disqualifies the probe-train kernel (train-aware spec)."""
        from repro.traffic.probe import ProbeTrain
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))],
            fifo_cross=PoissonGenerator(1e6, 800), warmup=0.1)
        train = ProbeTrain.at_rate(10, 5e6, 1500)
        resolution = channel.resolve_backend("auto", train=train)
        assert resolution.name == "event"
        assert "probe size" in resolution.fallback
        dense = channel.send_trains_dense(train, 3, seed=3,
                                          backend="auto")
        assert dense.recv_times.shape == (3, 10)
        # A matching probe size keeps the kernel eligible.
        matching = ProbeTrain.at_rate(10, 5e6, 800)
        assert channel.resolve_backend("auto",
                                       train=matching).name == "vector"

    def test_fifo_channel_resolves_to_lindley(self):
        channel = SimulatedFifoChannel(10e6)
        assert channel.resolve_backend("auto").kernel == \
            "batched Lindley recursion"

    def test_send_trains_auto_routes_to_kernel(self):
        from repro.traffic.probe import ProbeTrain
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.1)
        train = ProbeTrain.at_rate(8, 4e6, 1500)
        auto = channel.send_trains(train, 5, seed=3, backend="auto")
        forced = channel.send_trains(train, 5, seed=3, backend="vector")
        for a, b in zip(auto, forced):
            assert np.array_equal(a.recv_times, b.recv_times)

    def test_send_trains_dense_event_matches_raws(self):
        from repro.traffic.probe import ProbeTrain
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))], warmup=0.1)
        train = ProbeTrain.at_rate(8, 4e6, 1500)
        raws = channel.send_trains(train, 5, seed=3)
        dense = channel.send_trains_dense(train, 5, seed=3,
                                          backend="event")
        assert dense.recv_times.shape == (5, 8)
        for r, raw in enumerate(raws):
            assert np.array_equal(dense.recv_times[r], raw.recv_times)
            assert np.array_equal(dense.access_delays[r],
                                  raw.access_delays)


class TestExecutorDelegation:
    def test_auto_with_spec_picks_kernel(self):
        out = executor.run_batch(
            lambda s: ("event", s), 4, 9, backend="auto",
            vector_batch=lambda s: ("vector", s), spec=WLAN_TRAIN)
        assert out == ("vector", 9)

    def test_auto_without_spec_stays_on_event(self):
        out = executor.run_batch(
            lambda s: ("event", s), 3, 9, backend="auto",
            vector_batch=lambda s: ("vector", s))
        assert [flavor for flavor, _ in out] == ["event"] * 3

    def test_forced_vector_without_spec_trusts_caller(self):
        out = executor.run_batch(
            lambda s: ("event", s), 3, 9, backend="vector",
            vector_batch=lambda s: ("vector", s))
        assert out == ("vector", 9)

    def test_auto_with_ineligible_spec_maps_event(self):
        spec = ScenarioSpec(system="wlan", workload="train",
                            cross_traffic="other",
                            cross_detail=TRACE_DETAIL)
        out = executor.run_batch(
            lambda s: ("event", s), 2, 9, backend="auto",
            vector_batch=lambda s: ("vector", s), spec=spec)
        assert [flavor for flavor, _ in out] == ["event"] * 2


class TestRegistryCacheInteraction:
    """The cache/backend satellite: keys name the *resolved* backend."""

    def test_auto_and_forced_vector_share_cache_key(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        experiment = registry.get("fig6")
        overrides = {"n_packets": 40, "repetitions": 6}
        auto = experiment.run(scale=0.02, seed=1, backend="auto",
                              overrides=overrides, cache=cache)
        forced = experiment.run(scale=0.02, seed=1, backend="vector",
                                overrides=overrides, cache=cache)
        assert auto.kwargs["backend"] == "vector"
        assert forced.cache_key == auto.cache_key
        assert forced.cached is True  # served from the auto run

    def test_auto_key_differs_from_event_key(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        experiment = registry.get("fig6")
        overrides = {"n_packets": 40, "repetitions": 6}
        auto = experiment.run(scale=0.02, seed=1, backend="auto",
                              overrides=overrides, cache=cache)
        event = experiment.run(scale=0.02, seed=1, backend="event",
                               overrides=overrides, cache=cache)
        assert event.cached is False
        assert event.cache_key != auto.cache_key

    def test_auto_resolution_deterministic_across_jobs(self):
        experiment = registry.get("fig6")
        kwargs = []
        for jobs in (1, 2, 8):
            with executor.parallel_jobs(jobs):
                kwargs.append(experiment.kwargs_for(backend="auto"))
        assert kwargs[0] == kwargs[1] == kwargs[2]
        assert kwargs[0]["backend"] == "vector"

    def test_forced_vector_on_ineligible_raises_structured(self):
        experiment = _event_only_experiment()
        with pytest.raises(BackendUnavailableError,
                           match="supports backend") as err:
            experiment.run(scale=0.02, backend="vector")
        assert "no batched arrival sampler" in str(err.value)
        assert err.value.mismatches  # structured records attached

    def test_fallback_reason_lands_in_meta(self, tmp_path):
        """The cache-hit re-annotation contract: a cached auto->event
        fallback result must carry ``meta["backend_fallback"]`` on the
        *second* auto request too — the stored payload has no
        annotation, so the hit path must re-derive it per request."""
        cache = ResultCache(root=tmp_path)
        experiment = _event_only_experiment()
        report = experiment.run(scale=1.0, seed=2, backend="auto",
                                cache=cache)
        assert report.cached is False
        assert report.result.meta["backend"] == "event"
        assert report.result.meta["backend_fallback"] == TRACE_DETAIL
        # A cache hit re-annotates per-request instead of trusting the
        # stored payload.
        hit = experiment.run(scale=1.0, seed=2, backend="auto",
                             cache=cache)
        assert hit.cached is True
        assert hit.result.meta["backend"] == "event"
        assert hit.result.meta["backend_fallback"] == TRACE_DETAIL
        # ... and an explicit event request gets no fallback note.
        explicit = experiment.run(scale=1.0, seed=2, backend="event",
                                  cache=cache)
        assert explicit.cached is True
        assert "backend_fallback" not in explicit.result.meta

    def test_vector_experiments_is_derived(self):
        derived = {e.name for e in registry.experiments()
                   if "vector" in e.backends}
        assert registry.VECTOR_EXPERIMENTS == frozenset(derived)
        # The vector-coverage gap is closed: every registry entry is
        # dual-backend.
        assert registry.VECTOR_EXPERIMENTS == frozenset(registry.names())
        assert len(registry.VECTOR_EXPERIMENTS) == 25


class TestCliDispatch:
    @pytest.fixture(autouse=True)
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))

    def test_explain_backend_prints_without_running(self, capsys):
        assert main(["run", "all", "--explain-backend"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "probe-train kernel" in out
        # 25/25: every experiment resolves to a kernel, nothing falls
        # back to the event engine any more.
        assert "multihop chain kernel" in out
        assert "fallback" not in out
        assert "==" not in out  # no experiment table was printed

    def test_explain_backend_forced_error_exits_nonzero(self, capsys):
        experiment = _event_only_experiment()
        registry.register(experiment)
        try:
            assert main(["run", "t-trace", "--backend", "vector",
                         "--explain-backend"]) == 1
            assert "ERROR" in capsys.readouterr().out
        finally:
            registry.unregister("t-trace")

    def test_default_auto_records_resolved_backend(self, capsys):
        code = main(["run", "fig6", "--scale", "0.02", "--seed", "3",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # tiny scale may fail shape checks
        assert "backend=vector" in out

    def test_backend_auto_accepted_explicitly(self, capsys):
        code = main(["run", "ext-saturation", "--backend", "auto",
                     "--scale", "0.05", "--seed", "1", "--no-cache"])
        assert code == 0
        assert "backend=vector" in capsys.readouterr().out

    def test_sweep_has_backend_parity(self, capsys):
        code = main(["sweep", "fig6", "--backend", "auto", "--param",
                     "repetitions=4,6",
                     "--seed", "2", "--no-cache"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "backend=vector" in out
