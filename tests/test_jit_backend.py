"""The numba jit kernel tier (PR 9).

Pins the tier's whole contract:

* plumbing — the ambient ``kernel_tier`` scope the numpy kernels
  consult, the ``maybe_njit`` fallback that keeps the cores importable
  (and runnable, as plain Python) without numba, and the idempotent
  one-time ``warm_kernels`` compile;
* dispatch — ``auto`` picks the jit tier when numba is importable,
  degrades to the numpy tier with a structured
  ``meta["backend_fallback"]`` reason when it is not, and a *forced*
  ``--backend jit`` without numba fails with a
  :class:`BackendUnavailableError` carrying a dependency mismatch
  ("numba not installed"), never a bare ImportError;
* equivalence — the jit cores are *bit-identical* to the numpy tier on
  the Lindley replay path (and, by construction, on the saturated and
  probe-train kernels, pinned here too) and KS-equivalent to the event
  engine, including under ``--chunk-reps`` streaming.

The equivalence pins run in every environment: without numba the
``maybe_njit`` identity decorator executes the very same core
functions as plain Python, so a numba-free CI run still proves the
cores' arithmetic; the dedicated numba CI job proves the compiled
variants on top.
"""

import sys

import numpy as np
import pytest

from helpers import seed_params
from repro.analysis.saturation import simulate_saturated
from repro.backends import BackendUnavailableError, ScenarioSpec, dispatch
from repro.queueing.lindley import lindley_batch
from repro.runtime import registry
from repro.runtime.executor import chunked_reps
from repro.sim import jit
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain

L = 1500

WLAN_TRAIN = ScenarioSpec(system="wlan", workload="train",
                          cross_traffic="poisson")


@pytest.fixture
def jit_forced(monkeypatch):
    """Force the jit tier *selectable* regardless of numba.

    Without numba the cores run as plain Python (``maybe_njit`` is the
    identity), which is exactly what the bit-identity pins want: same
    arithmetic, same order, no compiler in the way.
    """
    monkeypatch.setattr(jit, "_FORCE_AVAILABLE", True)


@pytest.fixture
def numba_hidden(monkeypatch):
    """Make numba unimportable for this test, even where installed."""
    monkeypatch.setattr(jit, "_FORCE_AVAILABLE", None)
    monkeypatch.setitem(sys.modules, "numba", None)


def _batches_equal(a, b):
    """Bit-exact equality of two probe-batch-shaped results."""
    assert np.array_equal(a.send_times, b.send_times)
    assert np.array_equal(a.recv_times, b.recv_times)
    assert np.array_equal(a.access_delays, b.access_delays,
                          equal_nan=True)


class TestTierPlumbing:
    def test_default_tier_is_numpy(self):
        assert jit.active_tier() == "numpy"

    def test_kernel_tier_sets_and_restores(self):
        with jit.kernel_tier("jit"):
            assert jit.active_tier() == "jit"
            with jit.kernel_tier("numpy"):
                assert jit.active_tier() == "numpy"
            assert jit.active_tier() == "jit"
        assert jit.active_tier() == "numpy"

    def test_kernel_tier_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with jit.kernel_tier("jit"):
                raise RuntimeError("boom")
        assert jit.active_tier() == "numpy"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            with jit.kernel_tier("cuda"):
                pass  # pragma: no cover

    def test_tier_scope_only_engages_for_jit(self):
        with jit.tier_scope("vector"):
            assert jit.active_tier() == "numpy"
        with jit.tier_scope("jit"):
            assert jit.active_tier() == "jit"

    def test_availability_probe_matches_import(self, monkeypatch):
        monkeypatch.setattr(jit, "_FORCE_AVAILABLE", None)
        monkeypatch.setitem(sys.modules, "numba", None)
        assert not jit.available()
        assert jit.unavailable_reason() == "numba not installed"
        monkeypatch.setattr(jit, "_FORCE_AVAILABLE", True)
        assert jit.available()
        assert jit.unavailable_reason() is None

    def test_warm_kernels_idempotent(self, jit_forced):
        jit.warm_kernels()
        assert jit._WARMED
        jit.warm_kernels()  # second call is a no-op, not a recompile
        assert jit._WARMED


class TestForcedJitWithoutNumba:
    """Satellite 2: the failure mode must be structured, not ImportError."""

    def test_resolve_raises_backend_unavailable(self, numba_hidden):
        with pytest.raises(BackendUnavailableError,
                           match="numba not installed") as err:
            dispatch.resolve(WLAN_TRAIN, "jit")
        mismatches = [m for found in err.value.mismatches.values()
                      for m in found]
        assert mismatches
        assert {m.capability for m in mismatches} == {"dependency"}
        assert all(m.required == "numba" for m in mismatches)

    def test_registry_surfaces_dependency_error(self, numba_hidden):
        with pytest.raises(BackendUnavailableError,
                           match="numba not installed"):
            registry.get("fig6").kwargs_for(backend="jit")

    def test_channel_surfaces_dependency_error(self, numba_hidden):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.05)
        with pytest.raises(BackendUnavailableError,
                           match="numba not installed"):
            channel.send_trains(ProbeTrain.at_rate(6, 4e6, L), 2,
                                seed=1, backend="jit")

    def test_forced_jit_on_ineligible_scenario_names_capability(
            self, jit_forced):
        """Capability mismatches outrank availability: the path study
        has no jit twin, so forcing jit names the missing kernel."""
        spec = ScenarioSpec(system="path", workload="train",
                            cross_traffic="poisson")
        with pytest.raises(BackendUnavailableError,
                           match="no jit kernel supports"):
            dispatch.resolve(spec, "jit")


class TestAutoDegradation:
    def test_auto_degrades_to_numpy_tier(self, numba_hidden):
        resolution = dispatch.resolve(WLAN_TRAIN, "auto")
        assert resolution.name == "vector"
        assert resolution.fallback is None
        assert "numba" in resolution.degraded
        assert "degraded" in resolution.describe()

    def test_auto_picks_jit_when_available(self, jit_forced):
        resolution = dispatch.resolve(WLAN_TRAIN, "auto")
        assert resolution.name == "jit"
        assert resolution.kernel == "probe-train kernel (jit)"
        assert resolution.degraded is None

    def test_degradation_recorded_in_result_meta(self, numba_hidden):
        report = registry.get("eq1").run(scale=0.02, seed=3,
                                         backend="auto", cache=None)
        meta = report.result.meta
        assert meta["backend"] == "vector"
        assert "numba" in meta["backend_fallback"]

    def test_no_degradation_note_when_jit_runs(self, jit_forced):
        report = registry.get("eq1").run(scale=0.02, seed=3,
                                         backend="auto", cache=None)
        meta = report.result.meta
        assert meta["backend"] == "jit"
        assert "backend_fallback" not in meta


class TestBitIdentityWithNumpyTier:
    """Satellite 3: the jit tier must not move a single bit."""

    @pytest.mark.parametrize("seed", seed_params(0, 7, 23))
    def test_lindley_replay_bit_identical(self, jit_forced, seed):
        channel = SimulatedFifoChannel(
            8e6, cross_generator=PoissonGenerator(3e6, L),
            start_jitter=0.0)
        train = ProbeTrain.at_rate(12, 6e6, L)
        vector = channel.send_trains_dense(train, 13, seed=seed,
                                           backend="vector")
        jitted = channel.send_trains_dense(train, 13, seed=seed,
                                           backend="jit")
        _batches_equal(jitted, vector)

    @pytest.mark.parametrize("seed", seed_params(0, 7, 23))
    def test_saturated_batch_bit_identical(self, jit_forced, seed):
        vector = simulate_saturated(4, 15, 13, seed=seed, retry_limit=3,
                                    backend="vector")
        jitted = simulate_saturated(4, 15, 13, seed=seed, retry_limit=3,
                                    backend="jit")
        assert np.array_equal(vector.access_delays, jitted.access_delays,
                              equal_nan=True)
        assert np.array_equal(vector.durations, jitted.durations)
        assert np.array_equal(vector.successes, jitted.successes)
        assert np.array_equal(vector.collisions, jitted.collisions)
        assert np.array_equal(vector.drops, jitted.drops)

    @pytest.mark.parametrize("seed", seed_params(0, 7, 23))
    def test_probe_train_bit_identical(self, jit_forced, seed):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.05)
        train = ProbeTrain.at_rate(10, 5e6, L)
        vector = channel.send_trains_dense(train, 13, seed=seed,
                                           backend="vector")
        jitted = channel.send_trains_dense(train, 13, seed=seed,
                                           backend="jit")
        _batches_equal(jitted, vector)

    def test_lindley_batch_function_level(self, jit_forced):
        rng = np.random.default_rng(5)
        arrivals = np.sort(rng.random((6, 40)), axis=1)
        services = rng.exponential(0.02, (6, 40))
        starts, departures = lindley_batch(arrivals, services)
        with jit.kernel_tier("jit"):
            tiered_starts, tiered_departures = lindley_batch(arrivals,
                                                             services)
        assert np.array_equal(starts, tiered_starts)
        assert np.array_equal(departures, tiered_departures)

    def test_chunked_jit_bit_identical_to_dense(self, jit_forced):
        """PR-8 streaming composes with the tier: chunked == dense."""
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.05)
        train = ProbeTrain.at_rate(10, 5e6, L)
        dense = channel.send_trains_dense(train, 13, seed=11,
                                          backend="jit")
        with chunked_reps(5):
            chunked = channel.send_trains_dense(train, 13, seed=11,
                                                backend="jit")
        _batches_equal(chunked, dense)

    def test_chunked_jit_saturated_bit_identical(self, jit_forced):
        dense = simulate_saturated(4, 15, 13, seed=23, retry_limit=3,
                                   backend="jit")
        with chunked_reps(4):
            chunked = simulate_saturated(4, 15, 13, seed=23,
                                         retry_limit=3, backend="jit")
        assert np.array_equal(dense.access_delays, chunked.access_delays,
                              equal_nan=True)
        assert np.array_equal(dense.drops, chunked.drops)


class TestKsEquivalenceWithEventEngine:
    """Satellite 3: jit vs. the event engine, KS-pinned at alpha=0.01.

    Fixed seeds make these deterministic regressions (see
    ``tests/test_vector_backend.py`` for the rationale); the extra
    master seeds run under ``-m seed_sweep``.
    """

    S, P, R = 3, 25, 40

    @pytest.fixture(scope="class", params=seed_params(0, 7, 23))
    def saturated(self, request):
        seed = request.param
        event = simulate_saturated(self.S, self.P, self.R, seed=seed,
                                   backend="event")
        jit._FORCE_AVAILABLE = True
        try:
            jitted = simulate_saturated(self.S, self.P, self.R,
                                        seed=seed, backend="jit")
        finally:
            jit._FORCE_AVAILABLE = None
        return event, jitted

    def test_saturated_delays_match(self, saturated, ks_assert):
        event, jitted = saturated
        ks_assert(event.pooled_access_delays(),
                  jitted.pooled_access_delays())

    def test_saturated_throughput_matches(self, saturated, ks_assert):
        event, jitted = saturated
        ks_assert(event.throughput_bps(), jitted.throughput_bps())

    @pytest.mark.parametrize("seed", seed_params(0, 7, 23))
    def test_probe_train_first_delay_matches(self, jit_forced, seed,
                                             ks_assert):
        """The transient-critical statistic: the first packet's access
        delay, iid across repetitions on both engines."""
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.05)
        train = ProbeTrain.at_rate(20, 5e6, L)
        event = channel.send_trains_dense(train, 50, seed=seed,
                                          backend="event")
        jitted = channel.send_trains_dense(train, 50, seed=seed,
                                           backend="jit")
        ks_assert(event.access_delays[:, 0], jitted.access_delays[:, 0])
        ks_assert(event.access_delays.mean(axis=1),
                  jitted.access_delays.mean(axis=1))


class TestCacheKeyIsolation:
    def test_jit_and_vector_cache_keys_differ(self, jit_forced,
                                              tmp_path):
        """The backend sits in the cache key, so a jit result can
        never be served to a vector request (or vice versa)."""
        from repro.runtime.cache import ResultCache
        cache = ResultCache(root=tmp_path)
        experiment = registry.get("eq1")
        vector_key = cache.key_for(
            "eq1", experiment.kwargs_for(scale=0.02, backend="vector"))
        jit_key = cache.key_for(
            "eq1", experiment.kwargs_for(scale=0.02, backend="jit"))
        assert vector_key != jit_key
