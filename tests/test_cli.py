"""Tests for the command-line interface."""

import pytest

from repro.cli import REGISTRY, build_parser, main, scaled_kwargs


class TestRegistry:
    def test_every_paper_figure_registered(self):
        for figure in ("fig1", "fig4", "fig6", "fig7", "fig8", "fig9",
                       "fig10", "fig13", "fig15", "fig16", "fig17"):
            assert figure in REGISTRY

    def test_baselines_and_ablations_registered(self):
        for name in ("eq1", "bounds", "ablation-bianchi",
                     "ablation-rts", "ext-b-vs-n"):
            assert name in REGISTRY

    def test_runners_callable(self):
        for runner, _base in REGISTRY.values():
            assert callable(runner)


class TestScaledKwargs:
    def test_scaling(self):
        kwargs = scaled_kwargs({"repetitions": 100}, 0.5, None)
        assert kwargs == {"repetitions": 50}

    def test_floor_of_two(self):
        kwargs = scaled_kwargs({"repetitions": 10}, 0.01, None)
        assert kwargs["repetitions"] == 2

    def test_seed_override(self):
        kwargs = scaled_kwargs({}, 1.0, 42)
        assert kwargs == {"seed": 42}


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "fig17" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "capacity C" in out
        assert "fair share" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig6", "--scale", "0.05", "--seed", "3"])
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "mean_access_de" in out
        assert code in (0, 1)  # tiny scale may fail shape checks

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
