"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.runtime import registry
from repro.runtime.cache import ResultCache
from repro.runtime.manifest import Manifest


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    """Point the CLI's default cache at a throwaway directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


class TestRegistry:
    def test_every_paper_figure_registered(self):
        for figure in ("fig1", "fig4", "fig6", "fig7", "fig8", "fig9",
                       "fig10", "fig13", "fig15", "fig16", "fig17"):
            assert figure in registry.names()

    def test_baselines_and_ablations_registered(self):
        for name in ("eq1", "bounds", "ablation-bianchi",
                     "ablation-rts", "ext-b-vs-n"):
            assert name in registry.names()

    def test_runners_callable(self):
        for experiment in registry.experiments():
            assert callable(experiment.runner)


class TestScaledKwargs:
    def test_scaling(self):
        kwargs = registry.get("fig6").kwargs_for(scale=0.5)
        assert kwargs["repetitions"] == 200

    def test_floor_of_two(self):
        kwargs = registry.get("fig6").kwargs_for(scale=0.001)
        assert kwargs["repetitions"] == 2

    def test_seed_override(self):
        kwargs = registry.get("fig6").kwargs_for(seed=42)
        assert kwargs["seed"] == 42

    def test_default_seed_materialised(self):
        assert registry.get("fig6").kwargs_for()["seed"] == 0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "fig17" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "capacity C" in out
        assert "fair share" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_backend_vector(self, capsys):
        code = main(["run", "ext-saturation", "--backend", "vector",
                     "--scale", "0.1", "--seed", "1", "--no-cache"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=vector" in out

    def test_run_backend_unsupported_fails_cleanly(self, capsys):
        # Trace replay is the one traffic model no kernel samples; the
        # registry's builtins are all dual-backend now, so pin the
        # error path with a temporary event-only experiment.
        from repro.backends import ScenarioSpec
        experiment = registry.Experiment(
            name="t-event-only", runner=registry.get("fig6").runner,
            scalable={"repetitions": 4},
            scenario=ScenarioSpec(system="wlan", workload="train",
                                  cross_traffic="other"))
        registry.register(experiment)
        try:
            code = main(["run", "t-event-only", "--backend", "vector",
                         "--scale", "0.02", "--no-cache"])
        finally:
            registry.unregister("t-event-only")
        captured = capsys.readouterr()
        assert code == 1
        assert "supports backend" in captured.err

    def test_run_backend_vector_fig8(self, capsys):
        # The former poster child of the coverage gap: queue traces
        # now come from the kernel.
        code = main(["run", "fig8", "--backend", "vector", "--scale",
                     "0.05", "--seed", "1", "--no-cache"])
        out = capsys.readouterr().out
        assert code in (0, 1)  # tiny scale may fail shape checks
        assert "backend=vector" in out
        assert "mean_queue" in out  # the table truncates long headers

    def test_run_profile_prints_cprofile_table(self, capsys):
        code = main(["run", "fig6", "--profile", "--scale", "0.02",
                     "--seed", "3"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "cProfile (top 25, cumulative)" in out
        assert "cumtime" in out
        # The profiled run bypasses the cache entirely.
        assert "cache hit" not in out and "stored as" not in out

    def test_run_profile_json_writes_structured_table(self, tmp_path,
                                                      capsys):
        """``--profile-json`` (which implies ``--profile``) emits the
        same top-25 cumulative rows as machine-readable JSON."""
        path = tmp_path / "profile.json"
        code = main(["run", "fig6", "--profile-json", str(path),
                     "--scale", "0.02", "--seed", "3"])
        out = capsys.readouterr().out
        assert code in (0, 1)
        assert "cProfile (top 25, cumulative)" in out
        payload = json.loads(path.read_text())
        assert payload["target"] == "fig6"
        assert payload["sort"] == "cumulative"
        assert payload["top"] == 25
        (profile,) = payload["profiles"]
        assert profile["experiment"] == "fig6"
        assert profile["total_calls"] > 0
        assert 0 < len(profile["entries"]) <= 25
        entry = profile["entries"][0]
        assert set(entry) == {"file", "line", "function", "ncalls",
                              "primitive_calls", "tottime_s",
                              "cumtime_s"}
        # Sorted by cumulative time, descending.
        cumtimes = [e["cumtime_s"] for e in profile["entries"]]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_run_backend_jit_without_numba_fails_cleanly(self, capsys,
                                                         monkeypatch):
        import sys as _sys

        from repro.sim import jit
        monkeypatch.setattr(jit, "_FORCE_AVAILABLE", None)
        monkeypatch.setitem(_sys.modules, "numba", None)
        code = main(["run", "ext-saturation", "--backend", "jit",
                     "--scale", "0.05", "--no-cache"])
        captured = capsys.readouterr()
        assert code == 1
        assert "numba not installed" in captured.err

    def test_run_backend_rejects_unknown_choice(self):
        with pytest.raises(SystemExit):
            main(["run", "fig6", "--backend", "quantum"])

    def test_list_marks_multi_backend_experiments(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "[backends: event, vector]" in out

    def test_run_small_experiment(self, capsys):
        code = main(["run", "fig6", "--scale", "0.05", "--seed", "3",
                     "--no-cache"])
        out = capsys.readouterr().out
        assert "fig6" in out
        assert "mean_access_de" in out
        assert code in (0, 1)  # tiny scale may fail shape checks

    def test_run_serves_second_invocation_from_cache(self, capsys):
        argv = ["run", "fig6", "--scale", "0.05", "--seed", "3"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert "cache hit" in second
        # Everything except the provenance line is byte-identical.
        strip = lambda text: [line for line in text.splitlines()
                              if not line.startswith("   [")]
        assert strip(first) == strip(second)

    def test_run_all_aggregates_failures(self, capsys, monkeypatch):
        """One exploding experiment must not abort the rest."""
        def boom(**kwargs):
            raise RuntimeError("boom")

        experiments = [
            registry.Experiment(name="t-ok",
                                runner=registry.get("fig6").runner,
                                scalable={"repetitions": 4}),
            registry.Experiment(name="t-boom", runner=boom, scalable={},
                                seed_kwarg=None),
            registry.Experiment(name="t-ok2",
                                runner=registry.get("fig6").runner,
                                scalable={"repetitions": 4}),
        ]
        monkeypatch.setattr(
            registry, "_EXPERIMENTS",
            {e.name: e for e in experiments})
        code = main(["run", "all", "--no-cache", "--scale", "1.0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "t-boom: error: boom" in captured.err
        # Both healthy experiments still ran and printed their tables.
        assert captured.out.count("== fig6:") == 2

    def test_sweep_prints_summary(self, capsys):
        code = main(["sweep", "fig6", "--param", "repetitions=4,6",
                     "--seed", "2", "--no-cache"])
        out = capsys.readouterr().out
        assert "sweep fig6" in out
        assert "repetitions=4" in out and "repetitions=6" in out
        assert code in (0, 1)

    def test_sweep_rejects_malformed_param(self, capsys):
        assert main(["sweep", "fig6", "--param", "nonsense"]) == 2
        assert "malformed" in capsys.readouterr().err

    def test_cache_ls_and_clear(self, capsys):
        main(["run", "fig6", "--scale", "0.02", "--seed", "5"])
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        assert "fig6" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert main(["cache", "ls"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCrashSafety:
    """Manifests, --resume, --report, and damage-tolerant cache ls."""

    def _sweep(self, *extra):
        return ["sweep", "fig6", "--param", "repetitions=4,6",
                "--seed", "2", *extra]

    def test_sweep_writes_manifest(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        code = main(self._sweep("--manifest", str(path)))
        assert code in (0, 1)
        capsys.readouterr()
        manifest = Manifest.load(path)
        manifest.require("sweep", "fig6")
        assert len(manifest.records) == 2
        assert all(r.status in ("done", "failed")
                   for r in manifest.records.values())

    def test_resume_skips_completed_points(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        main(self._sweep("--manifest", str(path)))
        first = capsys.readouterr().out
        code = main(self._sweep("--resume", str(path)))
        second = capsys.readouterr().out
        assert code in (0, 1)
        assert second.count("[resumed]") == 2
        # Resumed output matches the original, provenance lines aside.
        strip = lambda text: [
            line.replace(" [cached]", "").replace(" [resumed]", "")
            for line in text.splitlines()
            if not line.startswith("   [")]
        assert strip(first) == strip(second)

    def test_resume_does_not_duplicate_journal_lines(self, tmp_path,
                                                     capsys):
        path = tmp_path / "m.jsonl"
        main(self._sweep("--manifest", str(path)))
        lines_after_run = path.read_text().count("\n")
        main(self._sweep("--resume", str(path)))
        capsys.readouterr()
        assert path.read_text().count("\n") == lines_after_run

    def test_resume_refuses_no_cache(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        main(self._sweep("--manifest", str(path)))
        capsys.readouterr()
        code = main(self._sweep("--resume", str(path), "--no-cache"))
        assert code == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_refuses_wrong_experiment(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        main(self._sweep("--manifest", str(path)))
        capsys.readouterr()
        code = main(["sweep", "fig7", "--param", "repetitions=4",
                     "--resume", str(path)])
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_resume_missing_manifest_fails_cleanly(self, tmp_path,
                                                   capsys):
        code = main(self._sweep("--resume",
                                str(tmp_path / "nowhere.jsonl")))
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_sweep_report_json(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        code = main(self._sweep("--report", str(report_path)))
        capsys.readouterr()
        assert code in (0, 1)
        report = json.loads(report_path.read_text())
        assert report["command"] == "sweep"
        assert report["target"] == "fig6"
        assert len(report["points"]) == 2
        point = report["points"][0]
        assert point["experiment"] == "fig6"
        assert point["label"] == "repetitions=4"
        assert point["status"] in ("done", "failed")
        assert point["cache_key"]
        assert sum(report["counts"].values()) == 2

    def test_run_all_report_counts_errors(self, tmp_path, capsys,
                                          monkeypatch):
        def boom(**kwargs):
            raise RuntimeError("boom")

        experiments = [
            registry.Experiment(name="t-ok",
                                runner=registry.get("fig6").runner,
                                scalable={"repetitions": 4}),
            registry.Experiment(name="t-boom", runner=boom,
                                scalable={}, seed_kwarg=None),
        ]
        monkeypatch.setattr(registry, "_EXPERIMENTS",
                            {e.name: e for e in experiments})
        report_path = tmp_path / "report.json"
        code = main(["run", "all", "--no-cache",
                     "--report", str(report_path)])
        capsys.readouterr()
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["command"] == "run"
        statuses = {p["experiment"]: p["status"]
                    for p in report["points"]}
        assert statuses["t-boom"] == "error"
        errors = {p["experiment"]: p["error"] for p in report["points"]}
        assert "boom" in errors["t-boom"]
        assert report["counts"]["error"] == 1

    def test_cache_ls_reports_malformed_and_quarantined(
            self, tmp_path, capsys):
        argv = ["run", "fig6", "--scale", "0.02", "--seed", "5"]
        main(argv)
        capsys.readouterr()
        cache = ResultCache()
        [entry] = cache.entries()
        entry.path.write_text("{corrupt")
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "1 malformed entry skipped" in out
        assert entry.path.name in out
        # Re-running quarantines the damaged file and recomputes.
        main(argv)
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "malformed" not in out
        assert "1 quarantined entry" in out
        assert main(["cache", "clear"]) == 0
        capsys.readouterr()
        assert cache.quarantined() == []
