"""KS-equivalence pins for the experiments that became dual-backend.

PR 4 grew vector coverage from 11 to 19 registry entries by
dispatching already-vectorizable batches through the new
``repro.backends`` layer; PR 5 closed the remaining gap (fig8,
ablation-rts, ablation-bianchi, ext-multihop -> 23/23).  Every *newly*
dual-backend experiment is pinned to the event engine here, at its own
configuration (probing rate, cross-traffic, train shape), with the
repo's KS machinery at ``alpha = 0.01`` — fixed seeds make these
deterministic regressions, not flaky statistical tests.  (The
previously covered probe-train family is pinned by
``tests/test_probe_vector_backend.py``.)

* figures 1/4 — the steady-state mode of the probe-train kernel
  (per-flow throughput samples vs. repeated event measurements);
* ablation-immediate-access — the ``immediate_access=False`` arm;
* ablation-ks / ablation-truncation / ext-b-vs-n /
  ext-tool-convergence / ext-topp — trains at each study's setting;
* fig8 — kernel queue traces vs. the event scenario's backlog logs;
* ablation-rts — the RTS/CTS airtime mode;
* ablation-bianchi — batched CBR cross-traffic in steady state;
* ext-multihop — the chained per-hop kernels end to end.
"""

import numpy as np
import pytest

from repro.analysis.steady_state import steady_state_samples
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain

L = 1500
REPS = 50


def train_pair(probe_rate, cross_rate, n, reps=REPS, seed=17,
               immediate_access=True):
    """Dense batches of the same channel/train on both backends."""
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate, L))], warmup=0.1,
        immediate_access=immediate_access)
    train = ProbeTrain.at_rate(n, probe_rate, L)
    event = channel.send_trains_dense(train, reps, seed=seed,
                                      backend="event")
    vector = channel.send_trains_dense(train, reps, seed=seed,
                                       backend="vector")
    return event, vector


class TestSteadyStateFigures:
    """Figures 1 and 4: the steady-state kernel mode."""

    N_REPS = 40
    WINDOW = dict(duration=1.0, warmup=0.3)

    @pytest.fixture(scope="class")
    def fig1_pair(self):
        kwargs = dict(repetitions=self.N_REPS, seed=5, **self.WINDOW)
        event = steady_state_samples(5e6, 4.5e6, 0.0, backend="event",
                                     **kwargs)
        vector = steady_state_samples(5e6, 4.5e6, 0.0, backend="vector",
                                      **kwargs)
        return event, vector

    @pytest.fixture(scope="class")
    def fig4_pair(self):
        kwargs = dict(repetitions=self.N_REPS, seed=6, **self.WINDOW)
        event = steady_state_samples(6e6, 3e6, 1.5e6, backend="event",
                                     **kwargs)
        vector = steady_state_samples(6e6, 3e6, 1.5e6, backend="vector",
                                      **kwargs)
        return event, vector

    def test_fig1_probe_throughput_distribution(self, fig1_pair, ks_assert):
        event, vector = fig1_pair
        ks_assert(event["probe"], vector["probe"])

    def test_fig1_cross_throughput_distribution(self, fig1_pair, ks_assert):
        event, vector = fig1_pair
        ks_assert(event["cross"], vector["cross"])

    def test_fig1_means_close(self, fig1_pair):
        event, vector = fig1_pair
        assert event["probe"].mean() == pytest.approx(
            vector["probe"].mean(), rel=0.1)
        assert event["cross"].mean() == pytest.approx(
            vector["cross"].mean(), rel=0.1)

    def test_fig4_all_flow_distributions(self, fig4_pair, ks_assert):
        event, vector = fig4_pair
        for flow in ("probe", "cross", "fifo"):
            ks_assert(event[flow], vector[flow])

    def test_fig4_fifo_crowded_out_on_both(self, fig4_pair):
        """The figure's qualitative claim holds on either backend: the
        probe gets well more than the FIFO flow's share."""
        for samples in fig4_pair:
            assert samples["probe"].mean() > samples["fifo"].mean()


class TestImmediateAccessAblation:
    """The new arm: immediate access disabled on both backends."""

    @pytest.fixture(scope="class")
    def pair(self):
        return train_pair(5e6, 4e6, n=20, seed=19,
                          immediate_access=False)

    def test_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays, vector.access_delays)

    def test_first_packet_distribution_matches(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays[:, 0],
                        vector.access_delays[:, 0])

    def test_backends_agree_on_residual_dip(self, pair):
        """Both backends report the same (much weakened) first-packet
        dip once the rule is off — the ablation's comparison input."""
        event, vector = pair
        dips = []
        for batch in (event, vector):
            profile = batch.access_delays.mean(axis=0)
            dips.append(float(profile[0] / profile[10:].mean()))
        assert dips[0] == pytest.approx(dips[1], rel=0.15)


class TestTrainStudies:
    """The remaining new dual-backend studies, at their settings."""

    def test_ablation_ks_setting(self, ks_assert):
        event, vector = train_pair(2e6, 2e6, n=20, seed=23)
        ks_assert(event.access_delays, vector.access_delays)

    def test_ablation_truncation_setting(self, ks_assert):
        event, vector = train_pair(8e6, 3e6, n=20, seed=29)
        ks_assert(event.output_gaps, vector.output_gaps)
        ks_assert(event.access_delays, vector.access_delays)

    def test_ext_b_vs_n_setting(self, ks_assert):
        event, vector = train_pair(8e6, 4e6, n=20, seed=31)
        ks_assert(event.access_delays, vector.access_delays)
        # Equation (31) inputs: the per-index mean profiles agree.
        # Index 0 is excluded: the immediate-access rule makes the
        # first-packet mean the highest-variance point of the profile
        # (a handful of collision-inflated outliers dominate it at 50
        # repetitions), and its distribution is pinned by KS elsewhere.
        assert np.allclose(event.access_delays.mean(axis=0)[1:],
                           vector.access_delays.mean(axis=0)[1:],
                           rtol=0.25)

    def test_ext_tool_convergence_setting(self, ks_assert):
        event, vector = train_pair(3e6, 2e6, n=20, seed=37)
        ks_assert(event.output_gaps, vector.output_gaps)

    def test_ext_topp_setting(self, ks_assert):
        event, vector = train_pair(4e6, 3e6, n=25, seed=41)
        ks_assert(event.output_gaps, vector.output_gaps)
        # TOPP regresses ri/ro on ri: the mean dispersion ratio must
        # agree across backends.
        gap_in = ProbeTrain.at_rate(25, 4e6, L).gap
        event_ratio = float(np.mean(event.output_gaps)) / gap_in
        vector_ratio = float(np.mean(vector.output_gaps)) / gap_in
        assert event_ratio == pytest.approx(vector_ratio, rel=0.1)


class TestFig8QueueTraces:
    """fig8's setting (8 Mb/s probe, 2 Mb/s cross) with queue tracking:
    the kernel's counted backlog vs. the event scenario's logs."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.analysis.transient import collect_delay_matrix
        cross = [("cross", PoissonGenerator(2e6, L))]
        kwargs = dict(n_packets=40, repetitions=60, seed=13,
                      track_queues=True)
        event = collect_delay_matrix(8e6, cross, backend="event",
                                     **kwargs)
        vector = collect_delay_matrix(8e6, cross, backend="vector",
                                      **kwargs)
        return event, vector

    def test_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.matrix.delays, vector.matrix.delays)

    def test_queue_size_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.queue_sizes["cross"],
                        vector.queue_sizes["cross"])

    def test_queue_grows_on_both_backends(self, pair):
        """Figure 8's qualitative claim — the contending queue builds
        up while the probe loads the channel — holds on either
        backend."""
        for collection in pair:
            profile = collection.mean_queue_profile("cross")
            assert profile[-10:].mean() > profile[0]


class TestRtsCtsAblation:
    """ablation-rts's setting (5 Mb/s probe, 4 Mb/s cross, RTS on)."""

    @pytest.fixture(scope="class")
    def pair(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.1,
            rts_threshold=0)
        train = ProbeTrain.at_rate(20, 5e6, L)
        event = channel.send_trains_dense(train, REPS, seed=43,
                                          backend="event")
        vector = channel.send_trains_dense(train, REPS, seed=43,
                                           backend="vector")
        return event, vector

    def test_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays, vector.access_delays)

    def test_first_packet_distribution_matches(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays[:, 0],
                        vector.access_delays[:, 0])

    def test_rts_overhead_agrees(self, pair):
        """Both backends report the same handshake-inflated steady
        mean — the ablation's comparison input."""
        event, vector = pair
        assert event.access_delays.mean() == pytest.approx(
            vector.access_delays.mean(), rel=0.1)


class TestBianchiCbrAblation:
    """ablation-bianchi's setting: n saturated CBR stations."""

    N_STATIONS = 3
    WINDOW = dict(duration=1.0, warmup=0.3)

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.mac.scenario import StationSpec, WlanScenario
        from repro.sim.probe_vector import (
            CbrCrossSpec,
            simulate_steady_state_batch,
        )
        from repro.traffic.generators import CBRGenerator
        reps, offered = 40, 9e6
        rep_seeds = np.random.SeedSequence(3).generate_state(reps)
        scenario = WlanScenario()
        event = np.zeros(reps)
        for j, rep_seed in enumerate(rep_seeds):
            specs = [StationSpec(f"s{i}",
                                 generator=CBRGenerator(offered, L))
                     for i in range(self.N_STATIONS)]
            result = scenario.run(specs,
                                  horizon=self.WINDOW["duration"],
                                  seed=int(rep_seed),
                                  until=self.WINDOW["duration"])
            event[j] = sum(
                result.station(f"s{i}").throughput_bps(
                    self.WINDOW["warmup"], self.WINDOW["duration"])
                for i in range(self.N_STATIONS))
        batch = simulate_steady_state_batch(
            offered, reps, size_bytes=L,
            cross=[CbrCrossSpec(offered / (L * 8), L)]
            * (self.N_STATIONS - 1),
            seed=3, **self.WINDOW)
        vector = batch.probe_throughput_bps() + batch.cross_throughput_bps()
        return event, vector

    def test_total_throughput_distribution_matches(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event, vector)

    def test_means_close(self, pair):
        event, vector = pair
        assert event.mean() == pytest.approx(vector.mean(), rel=0.05)


class TestMultihopChain:
    """ext-multihop's setting: 100 Mb/s wired backbone + contended
    WLAN last mile, probed end to end."""

    @pytest.fixture(scope="class")
    def pair(self):
        from repro.path import (NetworkPath, SimulatedPathChannel,
                                WiredHop, WlanHop)
        path = NetworkPath([
            WiredHop(100e6, prop_delay=1e-3),
            WlanHop([("neighbour", PoissonGenerator(4e6, L))]),
        ])
        channel = SimulatedPathChannel(path)
        train = ProbeTrain.at_rate(20, 3e6, L)
        event = channel.send_trains_dense(train, 2 * REPS, seed=47,
                                          backend="event")
        vector = channel.send_trains_dense(train, 2 * REPS, seed=47,
                                           backend="vector")
        return event, vector

    def test_output_gap_distribution_matches(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.output_gaps, vector.output_gaps)

    def test_per_index_delay_distributions_match(self, pair, ks_assert):
        """End-to-end per-packet delays at the head, middle and tail
        of the train (per-index: pooling across a train would mix the
        transient into the steady state)."""
        event, vector = pair
        event_delay = event.recv_times - event.send_times
        vector_delay = vector.recv_times - vector.send_times
        for idx in (0, 10, 19):
            ks_assert(event_delay[:, idx], vector_delay[:, idx])

    def test_mean_output_rate_agrees(self, pair):
        event, vector = pair
        event_rate = L * 8 / float(np.mean(event.output_gaps))
        vector_rate = L * 8 / float(np.mean(vector.output_gaps))
        assert event_rate == pytest.approx(vector_rate, rel=0.1)
