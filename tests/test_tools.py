"""Tests for the pathload-style iterative tool and SLoPS trends."""

import numpy as np
import pytest

from repro.analytic.bianchi import BianchiModel
from repro.core.dispersion import TrainMeasurement
from repro.core.tools import IterativeProbeTool, slops_trend
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import PoissonGenerator


def measurement_from_delays(delays, gap=1e-3):
    delays = np.asarray(delays, dtype=float)
    send = np.arange(len(delays)) * gap
    return TrainMeasurement(send, send + delays, 1500)


class TestSlopsTrend:
    def test_increasing_delays(self):
        m = measurement_from_delays(np.linspace(1e-3, 5e-3, 20))
        assert slops_trend(m) == "increasing"

    def test_flat_with_noise(self, rng):
        delays = 2e-3 + rng.normal(0, 1e-4, 40)
        delays = np.maximum.accumulate(np.zeros(40)) + delays
        m = measurement_from_delays(np.abs(delays))
        assert slops_trend(m) in ("no-trend", "ambiguous")

    def test_alternating_is_no_trend(self):
        delays = np.tile([2e-3, 2.1e-3], 10)
        m = measurement_from_delays(delays)
        assert slops_trend(m) == "no-trend"

    def test_needs_two_packets(self):
        with pytest.raises(ValueError):
            measurement_from_delays([1e-3])

    def test_clock_offset_invariant(self):
        delays = np.linspace(1e-3, 5e-3, 20)
        base = measurement_from_delays(delays)
        shifted = TrainMeasurement(base.send_times,
                                   base.recv_times + 7.0, 1500)
        assert slops_trend(base) == slops_trend(shifted)


class TestIterativeProbeTool:
    def make_wlan_tool(self, cross_rate=4.5e6, **kwargs):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate, 1500))], warmup=0.15)
        prober = Prober(channel, ProbeSessionConfig(repetitions=6,
                                                    ideal_clocks=True))
        return IterativeProbeTool(prober, n=50, repetitions=6, **kwargs)

    def test_converges_to_achievable_throughput_on_wlan(self):
        """Section 7.2: wired tools measure B on CSMA/CA links."""
        tool = self.make_wlan_tool()
        result = tool.search(0.5e6, 8e6, seed=3)
        bianchi = BianchiModel()
        fair_share = bianchi.fair_share(2)
        available = bianchi.capacity() - 4.5e6
        assert result.estimate_bps == pytest.approx(fair_share, rel=0.15)
        # ... and is nowhere near the available bandwidth.
        assert result.estimate_bps > 1.5 * available

    def test_converges_to_available_bandwidth_on_fifo(self):
        capacity, cross = 10e6, 4e6
        available = capacity - cross
        channel = SimulatedFifoChannel(
            capacity, cross_generator=PoissonGenerator(cross, 1500))
        prober = Prober(channel, ProbeSessionConfig(repetitions=6,
                                                    ideal_clocks=True))
        tolerance = 0.08
        tool = IterativeProbeTool(prober, n=100, repetitions=6,
                                  disturbance_tolerance=tolerance)
        result = tool.search(1e6, 12e6, seed=4)
        # The disturbance tolerance shifts the detected knee to
        # ri such that C ri/(ri + C - A) = (1 - tol) ri, i.e.
        # ri = C (1/(1-tol) - 1) + A.
        expected_knee = capacity * (1 / (1 - tolerance) - 1) + available
        assert result.estimate_bps == pytest.approx(expected_knee, rel=0.1)
        # Tightening the tolerance moves the estimate toward A itself.
        tight = IterativeProbeTool(prober, n=100, repetitions=6,
                                   disturbance_tolerance=0.03)
        tight_result = tight.search(1e6, 12e6, seed=5)
        assert tight_result.estimate_bps < result.estimate_bps
        assert tight_result.estimate_bps == pytest.approx(
            capacity * (1 / 0.97 - 1) + available, rel=0.1)

    def test_bracket_widens_when_high_undisturbed(self):
        channel = SimulatedFifoChannel(10e6)
        prober = Prober(channel, ProbeSessionConfig(repetitions=3,
                                                    ideal_clocks=True))
        tool = IterativeProbeTool(prober, n=20, repetitions=3)
        result = tool.search(1e6, 2e6, max_iterations=3, seed=5)
        # Empty 10 Mb/s link: 2 Mb/s is never disturbed; bracket grows.
        assert result.high_bps == float("inf") or result.estimate_bps > 2e6

    def test_low_already_disturbed_reports_floor(self):
        tool = self.make_wlan_tool()
        result = tool.search(7e6, 9e6, seed=6)
        assert result.estimate_bps == 7e6
        assert result.iterations == 0

    def test_history_recorded(self):
        tool = self.make_wlan_tool()
        result = tool.search(1e6, 8e6, resolution_bps=1e6, seed=7)
        assert len(result.history) == result.iterations

    def test_validation(self):
        tool = self.make_wlan_tool()
        with pytest.raises(ValueError):
            tool.search(0.0, 1e6)
        with pytest.raises(ValueError):
            tool.search(2e6, 1e6)
        with pytest.raises(ValueError):
            tool.search(1e6, 2e6, resolution_bps=0.0)

    def test_constructor_validation(self):
        prober = Prober(SimulatedFifoChannel(10e6))
        with pytest.raises(ValueError):
            IterativeProbeTool(prober, n=1)
        with pytest.raises(ValueError):
            IterativeProbeTool(prober, disturbance_tolerance=1.5)
