"""Tests for probing-train construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic.probe import (
    PacketPair,
    ProbeTrain,
    TrainSequence,
    gap_for_rate,
    rate_for_gap,
)


class TestGapRateConversion:
    def test_gap_for_rate(self):
        assert gap_for_rate(1.2e6, 1500) == pytest.approx(0.01)

    def test_rate_for_gap(self):
        assert rate_for_gap(0.01, 1500) == pytest.approx(1.2e6)

    def test_roundtrip(self):
        rate = 3.7e6
        assert rate_for_gap(gap_for_rate(rate, 576), 576) == pytest.approx(rate)

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_rejects_bad_rate(self, bad):
        with pytest.raises(ValueError):
            gap_for_rate(bad, 1500)

    @pytest.mark.parametrize("bad", [0.0, -0.01])
    def test_rejects_bad_gap(self, bad):
        with pytest.raises(ValueError):
            rate_for_gap(bad, 1500)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            gap_for_rate(1e6, 0)
        with pytest.raises(ValueError):
            rate_for_gap(0.01, -5)


class TestProbeTrain:
    def test_at_rate(self):
        train = ProbeTrain.at_rate(10, 1.2e6, 1500)
        assert train.gap == pytest.approx(0.01)
        assert train.rate_bps == pytest.approx(1.2e6)

    def test_duration(self):
        train = ProbeTrain(n=5, gap=0.01)
        assert train.duration == pytest.approx(0.04)

    def test_arrival_times_periodic(self):
        train = ProbeTrain(n=4, gap=0.25)
        assert np.allclose(train.arrival_times(1.0), [1.0, 1.25, 1.5, 1.75])

    def test_packets_sequence_numbers(self):
        packets = ProbeTrain(n=3, gap=0.1).packets()
        assert [p.seq for _, p in packets] == [0, 1, 2]
        assert all(p.flow == "probe" for _, p in packets)

    def test_packets_created_at_matches_time(self):
        packets = ProbeTrain(n=3, gap=0.1).packets(start=2.0)
        assert all(t == p.created_at for t, p in packets)

    def test_rejects_single_packet(self):
        with pytest.raises(ValueError):
            ProbeTrain(n=1, gap=0.1)

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            ProbeTrain(n=2, gap=-0.1)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            ProbeTrain(n=2, gap=0.1, size_bytes=0)

    def test_frozen(self):
        train = ProbeTrain(n=2, gap=0.1)
        with pytest.raises(AttributeError):
            train.n = 5


class TestPacketPair:
    def test_is_back_to_back(self):
        pair = PacketPair()
        assert pair.n == 2
        assert pair.gap == 0.0

    def test_infinite_rate(self):
        assert PacketPair().rate_bps == float("inf")

    def test_custom_size(self):
        assert PacketPair(576).size_bytes == 576

    def test_both_packets_same_instant(self):
        times = [t for t, _ in PacketPair().packets(start=3.0)]
        assert times == [3.0, 3.0]


class TestTrainSequence:
    def make(self, m=5, mean_spacing=0.5, guard=0.1):
        train = ProbeTrain(n=3, gap=0.01)
        return TrainSequence(train, m=m, mean_spacing=mean_spacing,
                             guard=guard)

    def test_start_times_count(self, rng):
        starts = self.make(m=7).start_times(rng)
        assert len(starts) == 7

    def test_first_train_at_start(self, rng):
        starts = self.make().start_times(rng, start=2.0)
        assert starts[0] == pytest.approx(2.0)

    def test_trains_never_overlap(self, rng):
        seq = self.make(m=20, mean_spacing=0.05, guard=0.02)
        starts = seq.start_times(rng)
        gaps = np.diff(starts)
        assert np.all(gaps >= seq.train.duration + seq.guard - 1e-12)

    def test_packets_grouping(self, rng):
        seq = self.make(m=4)
        packets = seq.packets(rng)
        assert len(packets) == 4 * 3
        seqs = [p.seq for _, p in packets]
        assert seqs == [0, 1, 2] * 4

    def test_mean_spacing_statistics(self, rng):
        seq = self.make(m=400, mean_spacing=0.3, guard=0.0)
        starts = seq.start_times(rng)
        spacing = np.diff(starts) - seq.train.duration
        assert np.mean(spacing) == pytest.approx(0.3, rel=0.15)

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            self.make(m=0)

    def test_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            self.make(mean_spacing=0.0)

    def test_rejects_negative_guard(self):
        with pytest.raises(ValueError):
            self.make(guard=-0.1)


class TestTrainProperties:
    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=200),
           rate=st.floats(min_value=1e5, max_value=5e7),
           size=st.integers(min_value=40, max_value=1500))
    def test_train_rate_roundtrip(self, n, rate, size):
        train = ProbeTrain.at_rate(n, rate, size)
        assert train.rate_bps == pytest.approx(rate, rel=1e-9)
        times = train.arrival_times()
        assert len(times) == n
        assert np.all(np.diff(times) >= 0)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=50),
           gap=st.floats(min_value=0.0, max_value=1.0))
    def test_duration_formula(self, n, gap):
        train = ProbeTrain(n=n, gap=gap)
        assert train.duration == pytest.approx((n - 1) * gap)
