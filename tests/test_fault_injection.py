"""Chaos tests: fault injection through the real CLI.

Each test here drives ``python -m repro`` in a subprocess with a
``REPRO_FAULTS`` clause active and asserts the declared recovery
contract (see ``repro.runtime.faults``):

* a crashed worker is retried and the run's cached result is
  byte-identical to an undisturbed run;
* a corrupted cache entry is quarantined and recomputed, and
  ``cache ls`` reports the damage;
* a torn manifest tail (mid-crash append) does not poison
  ``--resume``;
* a sweep SIGKILLed mid-flight and restarted with ``--resume``
  produces byte-identical cache contents to an uninterrupted sweep,
  re-executing only the incomplete points.

All tests are ``chaos``-marked: tier-1 skips them, the CI chaos job
runs them with ``pytest -m chaos``.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys

import pytest

pytestmark = pytest.mark.chaos

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

SWEEP = ["sweep", "fig6", "--param", "repetitions=4,6,8", "--seed", "2"]


def run_cli(args, cache_dir, env_extra=None, timeout=600):
    """Run ``python -m repro`` against an isolated cache directory."""
    env = dict(os.environ, PYTHONPATH=str(SRC),
               REPRO_CACHE_DIR=str(cache_dir))
    env.pop("REPRO_FAULTS", None)
    env.update(env_extra or {})
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=env, capture_output=True, text=True, timeout=timeout)


def cache_bytes(cache_dir):
    """Map entry filename -> raw bytes for every cache entry."""
    root = pathlib.Path(cache_dir)
    return {path.name: path.read_bytes()
            for path in root.glob("*.json")} if root.exists() else {}


class TestWorkerCrashRetry:
    def test_crashed_worker_retried_result_identical(self, tmp_path):
        # backend=event so repetitions shard across worker processes
        # (the vector backend never leaves the parent process).
        argv = ["run", "fig6", "--scale", "0.05", "--seed", "3",
                "--backend", "event", "--retries", "2"]
        clean = run_cli(argv, tmp_path / "clean",
                        env_extra={"REPRO_JOBS": "2"})
        assert clean.returncode == 0, clean.stderr
        faulty = run_cli(argv, tmp_path / "faulty",
                         env_extra={"REPRO_JOBS": "2",
                                    "REPRO_FAULTS": "crash-shard=0"})
        assert faulty.returncode == 0, faulty.stderr
        assert "shard 0" in faulty.stderr and "retry" in faulty.stderr
        assert str(23) in faulty.stderr  # the injected exit code
        # The recovered run cached byte-identical results.
        clean_entries = cache_bytes(tmp_path / "clean")
        faulty_entries = cache_bytes(tmp_path / "faulty")
        assert clean_entries  # sanity: something was stored
        assert faulty_entries == clean_entries

    def test_persistent_crash_finishes_in_process(self, tmp_path):
        argv = ["run", "fig6", "--scale", "0.05", "--seed", "3",
                "--backend", "event", "--retries", "1"]
        proc = run_cli(
            argv, tmp_path / "cache",
            env_extra={"REPRO_JOBS": "2",
                       "REPRO_FAULTS": "crash-shard=0:always"})
        assert proc.returncode == 0, proc.stderr
        assert "in-process fallback" in proc.stderr


class TestCacheCorruptionQuarantine:
    def test_corrupt_entry_quarantined_and_recomputed(self, tmp_path):
        cache_dir = tmp_path / "cache"
        argv = ["run", "fig6", "--scale", "0.05", "--seed", "3"]
        # First run publishes a corrupted entry (bit flipped on disk).
        first = run_cli(argv, cache_dir,
                        env_extra={"REPRO_FAULTS": "cache-bitflip=1"})
        assert first.returncode == 0, first.stderr
        # Second run must treat it as a miss, quarantine, recompute.
        second = run_cli(argv, cache_dir)
        assert second.returncode == 0, second.stderr
        assert "cache hit" not in second.stdout
        corrupt = list((cache_dir / "corrupt").glob("*"))
        assert len(corrupt) == 1
        # The recomputed entry matches an undisturbed run's bytes.
        clean = run_cli(argv, tmp_path / "clean")
        assert clean.returncode == 0, clean.stderr
        assert cache_bytes(cache_dir) == cache_bytes(tmp_path / "clean")
        # ... and cache ls reports the quarantined file, exit 0.
        listing = run_cli(["cache", "ls"], cache_dir)
        assert listing.returncode == 0, listing.stderr
        assert "1 quarantined entry" in listing.stdout
        # A third run is a plain cache hit.
        third = run_cli(argv, cache_dir)
        assert "cache hit" in third.stdout


class TestTornJournalRecovery:
    def test_resume_survives_torn_manifest_tail(self, tmp_path):
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "m.jsonl"
        full = run_cli(SWEEP + ["--manifest", str(manifest)], cache_dir)
        assert full.returncode == 0, full.stderr
        # Simulate a crash mid-append: a torn, newline-less fragment.
        with open(manifest, "a") as handle:
            handle.write('{"kind": "point", "point_id": "t, TORN')
        resumed = run_cli(SWEEP + ["--resume", str(manifest)],
                          cache_dir)
        assert resumed.returncode == 0, resumed.stderr
        assert resumed.stdout.count("[resumed]") == 3


class TestKillAndResume:
    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        cache_dir = tmp_path / "cache"
        manifest = tmp_path / "m.jsonl"
        report = tmp_path / "report.json"

        killed = run_cli(
            SWEEP + ["--manifest", str(manifest)], cache_dir,
            env_extra={"REPRO_FAULTS": "kill-after-points=1"})
        assert killed.returncode == -signal.SIGKILL
        journal = [json.loads(line) for line in
                   manifest.read_text().splitlines()]
        assert [r["status"] for r in journal if r["kind"] == "point"] \
            == ["done"]

        resumed = run_cli(
            SWEEP + ["--resume", str(manifest),
                     "--report", str(report)], cache_dir)
        assert resumed.returncode == 0, resumed.stderr
        # Only the completed point is served from the journal; the
        # two incomplete ones are (re)computed.
        assert resumed.stdout.count("[resumed]") == 1
        assert resumed.stdout.count("computed in") == 2
        payload = json.loads(report.read_text())
        assert payload["counts"] == {"done": 3}

        # Byte-identical cache contents vs an uninterrupted sweep.
        clean = run_cli(SWEEP, tmp_path / "clean")
        assert clean.returncode == 0, clean.stderr
        assert cache_bytes(cache_dir) == cache_bytes(tmp_path / "clean")

        # No partially-written cache entries survive the SIGKILL:
        # every entry on disk parses and passes its checksum.
        listing = run_cli(["cache", "ls"], cache_dir)
        assert listing.returncode == 0
        assert "malformed" not in listing.stdout
        assert "quarantined" not in listing.stdout

        # A second resume is pure cache/journal service: nothing runs.
        again = run_cli(SWEEP + ["--resume", str(manifest)], cache_dir)
        assert again.returncode == 0, again.stderr
        assert again.stdout.count("[resumed]") == 3
        assert "computed in" not in again.stdout
