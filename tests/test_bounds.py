"""Tests for the transient dispersion bounds (sections 5-6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analytic.bounds import (
    kappa,
    mean_head,
    mean_tail,
    output_gap_bounds,
    output_gap_bounds_strict,
    steady_state_achievable_throughput,
    transient_achievable_throughput,
)


INCREASING_MU = np.array([1.0e-3, 1.5e-3, 2.0e-3, 2.4e-3, 2.7e-3,
                          2.9e-3, 3.0e-3, 3.0e-3])


class TestKappa:
    def test_increasing_profile_positive(self):
        assert kappa(INCREASING_MU) > 0

    def test_flat_profile_zero(self):
        assert kappa(np.full(10, 2e-3)) == pytest.approx(0.0)

    def test_workload_drift_term(self):
        base = kappa(INCREASING_MU)
        drifted = kappa(INCREASING_MU, workload_drift=1e-3)
        assert drifted == pytest.approx(base + 1e-3 / 7)

    def test_needs_two_packets(self):
        with pytest.raises(ValueError):
            kappa(np.array([1e-3]))


class TestHeadTailMeans:
    def test_eq35_ordering_for_increasing_profile(self):
        # head <= tail <= mu_n (equation (35)).
        assert mean_head(INCREASING_MU) <= mean_tail(INCREASING_MU)
        assert mean_tail(INCREASING_MU) <= INCREASING_MU[-1]

    def test_flat_profile_equal(self):
        flat = np.full(5, 2e-3)
        assert mean_head(flat) == mean_tail(flat)


class TestOutputGapBounds:
    def test_bounds_ordered_across_gaps(self):
        for gap in np.linspace(1e-4, 2e-2, 50):
            bounds = output_gap_bounds(float(gap), INCREASING_MU, 0.2)
            assert bounds.lower <= bounds.upper + 1e-15

    def test_closed_form_at_high_rate(self):
        bounds = output_gap_bounds(1e-4, INCREASING_MU, u_fifo=0.3)
        assert bounds.lower == bounds.upper
        assert bounds.lower_region == "closed-form"
        expected = mean_tail(INCREASING_MU) + 0.3 * 1e-4
        assert bounds.lower == pytest.approx(expected)

    def test_low_rate_lower_bound_is_diagonal_plus_kappa(self):
        gap = 0.1  # far above any access delay
        bounds = output_gap_bounds(gap, INCREASING_MU, u_fifo=0.0)
        assert bounds.lower == pytest.approx(gap + kappa(INCREASING_MU))

    def test_contains_helper(self):
        bounds = output_gap_bounds(1e-3, INCREASING_MU, 0.0)
        assert bounds.contains((bounds.lower + bounds.upper) / 2)
        assert not bounds.contains(bounds.upper + 1.0)
        assert bounds.contains(bounds.upper + 0.5, slack=1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            output_gap_bounds(-1.0, INCREASING_MU)
        with pytest.raises(ValueError):
            output_gap_bounds(1e-3, np.array([1e-3]))
        with pytest.raises(ValueError):
            output_gap_bounds(1e-3, INCREASING_MU, u_fifo=1.0)
        with pytest.raises(ValueError):
            output_gap_bounds(1e-3, -INCREASING_MU)

    @settings(max_examples=50, deadline=None)
    @given(gap=st.floats(min_value=1e-5, max_value=0.1),
           u_fifo=st.floats(min_value=0.0, max_value=0.9),
           scale=st.floats(min_value=1e-4, max_value=1e-2))
    def test_bounds_always_ordered(self, gap, u_fifo, scale):
        mu = np.linspace(0.4, 1.0, 12) * scale
        bounds = output_gap_bounds(gap, mu, u_fifo)
        assert bounds.lower <= bounds.upper + 1e-15
        assert bounds.lower > 0


class TestStrictBounds:
    def test_ordered(self):
        for gap in np.linspace(1e-4, 2e-2, 30):
            bounds = output_gap_bounds_strict(float(gap), INCREASING_MU)
            assert bounds.lower <= bounds.upper + 1e-15

    def test_saturating_lower_bound(self):
        # gI far below every mu: the train backlogs completely and
        # E[gO] -> mean_head + gI/(n-1)-ish; the lower bound reduces to
        # head + kappa + gI/(n-1).
        gap = 1e-5
        bounds = output_gap_bounds_strict(gap, INCREASING_MU)
        n = len(INCREASING_MU)
        expected = (gap + (np.sum(INCREASING_MU[:-1]) - (n - 1) * gap)
                    / (n - 1) + kappa(INCREASING_MU))
        assert bounds.lower == pytest.approx(expected)

    def test_low_rate_lower_is_diagonal_plus_kappa(self):
        gap = 0.5
        bounds = output_gap_bounds_strict(gap, INCREASING_MU)
        assert bounds.lower == pytest.approx(gap + kappa(INCREASING_MU))

    def test_upper_always_head_plus_gap(self):
        gap = 3e-3
        bounds = output_gap_bounds_strict(gap, INCREASING_MU)
        assert bounds.upper == pytest.approx(
            gap + mean_head(INCREASING_MU) + kappa(INCREASING_MU))

    def test_strict_upper_not_below_paper_lower(self):
        """The strict interval must overlap the paper's lower bound."""
        for gap in np.linspace(1e-4, 1e-2, 20):
            strict = output_gap_bounds_strict(float(gap), INCREASING_MU)
            paper = output_gap_bounds(float(gap), INCREASING_MU, 0.0)
            assert strict.upper >= paper.lower - 1e-15


class TestTransientAchievableThroughput:
    def test_eq31_formula(self):
        b = transient_achievable_throughput(1500, INCREASING_MU)
        assert b == pytest.approx(1500 * 8 / float(np.mean(INCREASING_MU)))

    def test_short_train_b_exceeds_steady_state(self):
        """Equation (32): the transient B overestimates the steady B."""
        steady_mu = float(INCREASING_MU[-1])
        transient_b = transient_achievable_throughput(1500, INCREASING_MU)
        steady_b = steady_state_achievable_throughput(1500, steady_mu)
        assert transient_b > steady_b

    def test_fifo_utilization_reduces_b(self):
        plain = transient_achievable_throughput(1500, INCREASING_MU, 0.0)
        loaded = transient_achievable_throughput(1500, INCREASING_MU, 0.4)
        assert loaded == pytest.approx(plain * 0.6)

    def test_eq36_eq37_consistency(self):
        """As mu flattens, eq (31) converges to eq (37)."""
        flat = np.full(200, 3e-3)
        b31 = transient_achievable_throughput(1500, flat, 0.2)
        b37 = steady_state_achievable_throughput(1500, 3e-3, 0.2)
        assert b31 == pytest.approx(b37)

    def test_validation(self):
        with pytest.raises(ValueError):
            transient_achievable_throughput(0, INCREASING_MU)
        with pytest.raises(ValueError):
            transient_achievable_throughput(1500, np.array([]))
        with pytest.raises(ValueError):
            transient_achievable_throughput(1500, INCREASING_MU, 1.0)
        with pytest.raises(ValueError):
            steady_state_achievable_throughput(1500, 0.0)


class TestBoundsOnSimulatedPaths:
    """Equation (18)/(21) identities on real DCF sample paths."""

    @pytest.fixture(scope="class")
    def raw_trains(self):
        from repro.testbed.channel import SimulatedWlanChannel
        from repro.traffic.generators import PoissonGenerator
        from repro.traffic.probe import ProbeTrain

        channel = SimulatedWlanChannel(
            [("x", PoissonGenerator(2.5e6, 1500))], start_jitter=0.0)
        train = ProbeTrain.at_rate(8, 5e6)
        return train, channel.send_trains(train, 60, seed=21)

    def test_eq18_identity_per_path(self, raw_trains):
        """gO = gI + Rn/(n-1) + (mu_n - mu_1)/(n-1) exactly (W = 0)."""
        from repro.queueing.workload import intrusion_residual_recursive

        train, raws = raw_trains
        n = train.n
        for raw in raws:
            measured_go = (raw.recv_times[-1] - raw.recv_times[0]) / (n - 1)
            mu = raw.access_delays
            residual = intrusion_residual_recursive(mu, train.gap)
            reconstructed = (train.gap + residual[-1] / (n - 1)
                             + (mu[-1] - mu[0]) / (n - 1))
            assert measured_go == pytest.approx(reconstructed, abs=1e-9)

    def test_mean_gap_within_strict_bounds(self, raw_trains):
        train, raws = raw_trains
        n = train.n
        mu_means = np.vstack([r.access_delays for r in raws]).mean(axis=0)
        mean_go = float(np.mean(
            [(r.recv_times[-1] - r.recv_times[0]) / (n - 1) for r in raws]))
        bounds = output_gap_bounds_strict(train.gap, mu_means)
        assert bounds.contains(mean_go, slack=0.05 * mean_go)
