"""Tests for the Lindley recursion and busy periods."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.lindley import (
    BusyPeriods,
    lindley_batch,
    lindley_recursion,
)


def _scalar_reference(arrivals, services):
    """The original per-packet loop, kept as the batched kernel's
    ground truth."""
    n = len(arrivals)
    starts = np.empty(n)
    departures = np.empty(n)
    previous = -np.inf
    for i in range(n):
        start = arrivals[i] if arrivals[i] > previous else previous
        starts[i] = start
        previous = start + services[i]
        departures[i] = previous
    return starts, departures


class TestLindleyRecursion:
    def test_empty_input(self):
        starts, departures = lindley_recursion(np.array([]), np.array([]))
        assert len(starts) == 0 and len(departures) == 0

    def test_single_packet(self):
        starts, departures = lindley_recursion([1.0], [0.5])
        assert starts[0] == 1.0
        assert departures[0] == 1.5

    def test_no_queueing_when_spaced_out(self):
        starts, departures = lindley_recursion([0.0, 10.0], [1.0, 1.0])
        assert list(starts) == [0.0, 10.0]
        assert list(departures) == [1.0, 11.0]

    def test_back_to_back_serialized(self):
        starts, departures = lindley_recursion([0.0, 0.0, 0.0],
                                               [1.0, 1.0, 1.0])
        assert list(starts) == [0.0, 1.0, 2.0]
        assert list(departures) == [1.0, 2.0, 3.0]

    def test_partial_overlap(self):
        starts, departures = lindley_recursion([0.0, 0.5], [1.0, 1.0])
        assert starts[1] == pytest.approx(1.0)
        assert departures[1] == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([0.0, 1.0], [1.0])

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([1.0, 0.5], [1.0, 1.0])

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([0.0], [-1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion(np.zeros((2, 2)), np.ones((2, 2)))

    def test_zero_service_allowed(self):
        starts, departures = lindley_recursion([0.0, 0.0], [0.0, 1.0])
        assert departures[0] == 0.0
        assert departures[1] == 1.0


class TestLindleyProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0)),
        min_size=1, max_size=60))
    def test_invariants(self, pairs):
        arrivals = np.sort(np.array([a for a, _ in pairs]))
        services = np.array([s for _, s in pairs])
        starts, departures = lindley_recursion(arrivals, services)
        # Service never starts before arrival.
        assert np.all(starts >= arrivals - 1e-12)
        # Departures are arrivals + waiting + service, FIFO-ordered.
        assert np.all(np.diff(departures) >= -1e-12)
        # Work conservation: departure = start + service.
        assert np.allclose(departures, starts + services)
        # No service overlap.
        assert np.all(starts[1:] >= departures[:-1] - 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=0.5),
                    min_size=2, max_size=40))
    def test_saturated_queue_is_pure_serialization(self, services):
        arrivals = np.zeros(len(services))
        services = np.array(services)
        _, departures = lindley_recursion(arrivals, services)
        assert np.allclose(departures, np.cumsum(services))


class TestBusyPeriods:
    def make(self, arrivals, services):
        arrivals = np.asarray(arrivals, dtype=float)
        services = np.asarray(services, dtype=float)
        starts, departures = lindley_recursion(arrivals, services)
        return BusyPeriods.from_sample_path(arrivals, starts, departures)

    def test_single_busy_period(self):
        busy = self.make([0.0, 0.5], [1.0, 1.0])
        assert len(busy.intervals) == 1
        assert busy.intervals[0] == (0.0, 2.0)

    def test_separate_busy_periods(self):
        busy = self.make([0.0, 10.0], [1.0, 1.0])
        assert len(busy.intervals) == 2

    def test_busy_time_full_overlap(self):
        busy = self.make([0.0], [2.0])
        assert busy.busy_time(0.0, 2.0) == pytest.approx(2.0)

    def test_busy_time_partial_window(self):
        busy = self.make([0.0], [2.0])
        assert busy.busy_time(1.0, 3.0) == pytest.approx(1.0)

    def test_busy_time_outside_window(self):
        busy = self.make([0.0], [1.0])
        assert busy.busy_time(5.0, 6.0) == 0.0

    def test_utilization(self):
        busy = self.make([0.0], [1.0])
        assert busy.utilization(0.0, 2.0) == pytest.approx(0.5)

    def test_utilization_window_validation(self):
        busy = self.make([0.0], [1.0])
        with pytest.raises(ValueError):
            busy.utilization(1.0, 1.0)

    def test_busy_time_window_validation(self):
        busy = self.make([0.0], [1.0])
        with pytest.raises(ValueError):
            busy.busy_time(2.0, 1.0)

    def test_contains(self):
        busy = self.make([0.0, 10.0], [1.0, 1.0])
        assert busy.contains(0.5)
        assert not busy.contains(5.0)
        assert busy.contains(10.5)

    def test_contains_boundary_right_open(self):
        busy = self.make([0.0], [1.0])
        assert busy.contains(0.0)
        assert not busy.contains(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.01, max_value=1.0)),
        min_size=1, max_size=40))
    def test_total_busy_time_equals_total_service(self, pairs):
        arrivals = np.sort(np.array([a for a, _ in pairs]))
        services = np.array([s for _, s in pairs])
        starts, departures = lindley_recursion(arrivals, services)
        busy = BusyPeriods.from_sample_path(arrivals, starts, departures)
        total = busy.busy_time(0.0, float(departures[-1]) + 1.0)
        assert total == pytest.approx(float(np.sum(services)), rel=1e-9)


class TestLindleyBatch:
    def test_rows_match_scalar_recursion(self):
        rng = np.random.default_rng(0)
        arrivals = np.sort(rng.uniform(0, 5.0, (6, 50)), axis=1)
        services = rng.exponential(0.05, (6, 50))
        starts, departures = lindley_batch(arrivals, services)
        for r in range(6):
            s_ref, d_ref = _scalar_reference(arrivals[r], services[r])
            assert np.allclose(starts[r], s_ref, atol=1e-9)
            assert np.allclose(departures[r], d_ref, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0)),
        min_size=1, max_size=40),
        st.integers(min_value=1, max_value=5))
    def test_property_matches_scalar_elementwise(self, pairs, reps):
        """Random workloads — including zero-service entries — agree
        with the scalar recursion element-wise on every row."""
        arrivals = np.sort(np.array([a for a, _ in pairs]))
        services = np.array([s for _, s in pairs])
        batch_a = np.tile(arrivals, (reps, 1)) + np.arange(reps)[:, None]
        batch_s = np.tile(services, (reps, 1))
        starts, departures = lindley_batch(batch_a, batch_s)
        for r in range(reps):
            s_ref, d_ref = _scalar_reference(batch_a[r], batch_s[r])
            assert np.allclose(starts[r], s_ref, atol=1e-9)
            assert np.allclose(departures[r], d_ref, atol=1e-9)

    def test_overload_serializes(self):
        """Overload edge case: arrivals far faster than the service
        rate collapse to pure serialization of the service times."""
        arrivals = np.zeros((3, 30))
        services = np.full((3, 30), 0.25)
        _, departures = lindley_batch(arrivals, services)
        assert np.allclose(departures, np.cumsum(services, axis=1))

    def test_zero_service_passes_through(self):
        arrivals = np.array([[0.0, 1.0, 1.0]])
        services = np.zeros((1, 3))
        starts, departures = lindley_batch(arrivals, services)
        assert np.allclose(departures, arrivals)
        assert np.allclose(starts, arrivals)

    def test_inf_padding_isolated_to_tail(self):
        arrivals = np.array([[0.0, 0.1, np.inf, np.inf],
                             [0.0, 0.2, 0.3, np.inf]])
        services = np.where(np.isfinite(arrivals), 0.5, 0.0)
        _, departures = lindley_batch(arrivals, services)
        assert np.allclose(departures[0, :2], [0.5, 1.0])
        assert np.allclose(departures[1, :3], [0.5, 1.0, 1.5])
        assert np.all(np.isinf(departures[0, 2:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            lindley_batch(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            lindley_batch(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ValueError):
            lindley_batch(np.array([[1.0, 0.5]]), np.ones((1, 2)))
        with pytest.raises(ValueError):
            lindley_batch(np.zeros((1, 2)), -np.ones((1, 2)))

    def test_1d_recursion_matches_loop_reference(self):
        """The vectorized 1-D entry point agrees with the loop it
        replaced."""
        rng = np.random.default_rng(7)
        arrivals = np.sort(rng.uniform(0, 100.0, 5000))
        services = rng.exponential(1e-2, 5000)
        starts, departures = lindley_recursion(arrivals, services)
        s_ref, d_ref = _scalar_reference(arrivals, services)
        assert np.allclose(starts, s_ref, atol=1e-9)
        assert np.allclose(departures, d_ref, atol=1e-9)
