"""Tests for the Lindley recursion and busy periods."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.lindley import BusyPeriods, lindley_recursion


class TestLindleyRecursion:
    def test_empty_input(self):
        starts, departures = lindley_recursion(np.array([]), np.array([]))
        assert len(starts) == 0 and len(departures) == 0

    def test_single_packet(self):
        starts, departures = lindley_recursion([1.0], [0.5])
        assert starts[0] == 1.0
        assert departures[0] == 1.5

    def test_no_queueing_when_spaced_out(self):
        starts, departures = lindley_recursion([0.0, 10.0], [1.0, 1.0])
        assert list(starts) == [0.0, 10.0]
        assert list(departures) == [1.0, 11.0]

    def test_back_to_back_serialized(self):
        starts, departures = lindley_recursion([0.0, 0.0, 0.0],
                                               [1.0, 1.0, 1.0])
        assert list(starts) == [0.0, 1.0, 2.0]
        assert list(departures) == [1.0, 2.0, 3.0]

    def test_partial_overlap(self):
        starts, departures = lindley_recursion([0.0, 0.5], [1.0, 1.0])
        assert starts[1] == pytest.approx(1.0)
        assert departures[1] == pytest.approx(2.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([0.0, 1.0], [1.0])

    def test_decreasing_arrivals_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([1.0, 0.5], [1.0, 1.0])

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion([0.0], [-1.0])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            lindley_recursion(np.zeros((2, 2)), np.ones((2, 2)))

    def test_zero_service_allowed(self):
        starts, departures = lindley_recursion([0.0, 0.0], [0.0, 1.0])
        assert departures[0] == 0.0
        assert departures[1] == 1.0


class TestLindleyProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=1.0)),
        min_size=1, max_size=60))
    def test_invariants(self, pairs):
        arrivals = np.sort(np.array([a for a, _ in pairs]))
        services = np.array([s for _, s in pairs])
        starts, departures = lindley_recursion(arrivals, services)
        # Service never starts before arrival.
        assert np.all(starts >= arrivals - 1e-12)
        # Departures are arrivals + waiting + service, FIFO-ordered.
        assert np.all(np.diff(departures) >= -1e-12)
        # Work conservation: departure = start + service.
        assert np.allclose(departures, starts + services)
        # No service overlap.
        assert np.all(starts[1:] >= departures[:-1] - 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=0.5),
                    min_size=2, max_size=40))
    def test_saturated_queue_is_pure_serialization(self, services):
        arrivals = np.zeros(len(services))
        services = np.array(services)
        _, departures = lindley_recursion(arrivals, services)
        assert np.allclose(departures, np.cumsum(services))


class TestBusyPeriods:
    def make(self, arrivals, services):
        arrivals = np.asarray(arrivals, dtype=float)
        services = np.asarray(services, dtype=float)
        starts, departures = lindley_recursion(arrivals, services)
        return BusyPeriods.from_sample_path(arrivals, starts, departures)

    def test_single_busy_period(self):
        busy = self.make([0.0, 0.5], [1.0, 1.0])
        assert len(busy.intervals) == 1
        assert busy.intervals[0] == (0.0, 2.0)

    def test_separate_busy_periods(self):
        busy = self.make([0.0, 10.0], [1.0, 1.0])
        assert len(busy.intervals) == 2

    def test_busy_time_full_overlap(self):
        busy = self.make([0.0], [2.0])
        assert busy.busy_time(0.0, 2.0) == pytest.approx(2.0)

    def test_busy_time_partial_window(self):
        busy = self.make([0.0], [2.0])
        assert busy.busy_time(1.0, 3.0) == pytest.approx(1.0)

    def test_busy_time_outside_window(self):
        busy = self.make([0.0], [1.0])
        assert busy.busy_time(5.0, 6.0) == 0.0

    def test_utilization(self):
        busy = self.make([0.0], [1.0])
        assert busy.utilization(0.0, 2.0) == pytest.approx(0.5)

    def test_utilization_window_validation(self):
        busy = self.make([0.0], [1.0])
        with pytest.raises(ValueError):
            busy.utilization(1.0, 1.0)

    def test_busy_time_window_validation(self):
        busy = self.make([0.0], [1.0])
        with pytest.raises(ValueError):
            busy.busy_time(2.0, 1.0)

    def test_contains(self):
        busy = self.make([0.0, 10.0], [1.0, 1.0])
        assert busy.contains(0.5)
        assert not busy.contains(5.0)
        assert busy.contains(10.5)

    def test_contains_boundary_right_open(self):
        busy = self.make([0.0], [1.0])
        assert busy.contains(0.0)
        assert not busy.contains(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=10.0),
        st.floats(min_value=0.01, max_value=1.0)),
        min_size=1, max_size=40))
    def test_total_busy_time_equals_total_service(self, pairs):
        arrivals = np.sort(np.array([a for a, _ in pairs]))
        services = np.array([s for _, s in pairs])
        starts, departures = lindley_recursion(arrivals, services)
        busy = BusyPeriods.from_sample_path(arrivals, starts, departures)
        total = busy.busy_time(0.0, float(departures[-1]) + 1.0)
        assert total == pytest.approx(float(np.sum(services)), rel=1e-9)
