"""Tests for the discrete-event engine."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Event, Simulator, SimulationError


class TestScheduling:
    def test_initial_clock_is_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=5.0).now == 5.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(3.0, lambda: fired.append(3))
        sim.run()
        assert fired == [1, 2, 3]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_priority_breaks_ties(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=1)
        sim.schedule(1.0, lambda: fired.append("early"), priority=-1)
        sim.schedule(1.0, lambda: fired.append("mid"), priority=0)
        sim.run()
        assert fired == ["early", "mid", "late"]

    def test_same_priority_fifo_order(self):
        sim = Simulator()
        fired = []
        for k in range(5):
            sim.schedule(1.0, lambda k=k: fired.append(k))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_after(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.schedule_after(
            0.5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [1.5]

    def test_schedule_after_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule(0.5, lambda: None)

    def test_schedule_nonfinite_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(math.inf, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule(math.nan, lambda: None)

    def test_events_scheduled_during_run_fire(self):
        sim = Simulator()
        fired = []

        def chain(k):
            fired.append(k)
            if k < 3:
                sim.schedule_after(1.0, lambda: chain(k + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_after_fire_raises(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        from repro.sim.engine import EventCancelled
        with pytest.raises(EventCancelled):
            event.cancel()

    def test_pending_property(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

    def test_fired_event_not_pending(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert not event.pending

    def test_peek_time_skips_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == 2.0

    def test_pending_count_excludes_cancelled(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.pending_count == 1


class TestRunControl:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0

    def test_run_until_sets_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_max_events(self):
        sim = Simulator()
        fired = []
        for k in range(5):
            sim.schedule(float(k + 1), lambda k=k: fired.append(k))
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_step_fires_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_events_processed_counter(self):
        sim = Simulator()
        for k in range(3):
            sim.schedule(float(k), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_clear_drops_pending_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.clear()
        sim.run()
        assert fired == []

    def test_not_reentrant(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        sim.run()
        assert fired == [1, 5]


class TestDocumentedErrorEdgeCases:
    """The documented misuse errors, hit from awkward angles."""

    def test_schedule_in_past_from_inside_callback(self):
        """The past-scheduling guard also holds mid-run, when `now`
        has advanced beyond the requested time."""
        sim = Simulator()
        errors = []

        def tries_to_rewind():
            try:
                sim.schedule(0.5, lambda: None)
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(2.0, tries_to_rewind)
        sim.run()
        assert errors and "before now=2.0" in errors[0]

    def test_schedule_within_tolerance_of_now_is_clamped(self):
        """Times a hair in the past (float noise) clamp to `now`
        instead of raising."""
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        event = sim.schedule(1.0 - 1e-13, lambda: None)
        assert event.time == 1.0

    def test_cancel_already_fired_event_from_later_callback(self):
        """A stale reference cancelled after its event fired raises
        EventCancelled even when the cancel happens mid-run."""
        from repro.sim.engine import EventCancelled

        sim = Simulator()
        errors = []
        stale = sim.schedule(1.0, lambda: None)

        def cancels_stale():
            try:
                stale.cancel()
            except EventCancelled as exc:
                errors.append(str(exc))

        sim.schedule(2.0, cancels_stale)
        sim.run()
        assert errors and "already fired" in errors[0]

    def test_cancel_twice_is_idempotent(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        event.cancel()  # only cancelling a *fired* event is an error
        sim.run()
        assert fired == []
        assert not event.pending

    def test_rerun_of_running_simulator_raises(self):
        """Re-running a simulator that is already running (the
        documented non-reentrancy error), including via step()."""
        sim = Simulator()
        errors = []

        def reenters():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(str(exc))

        sim.schedule(1.0, reenters)
        sim.run()
        assert errors == ["simulator is not reentrant"]

    def test_rerun_after_completion_is_safe(self):
        """A *finished* run is not an error: the heap is empty, the
        clock is preserved, and new work can be scheduled."""
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.run()
        sim.run()  # no-op, not an error
        assert sim.now == 1.0
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_step_skips_cancelled_then_reports_empty(self):
        sim = Simulator()
        first = sim.schedule(1.0, lambda: None)
        second = sim.schedule(2.0, lambda: None)
        first.cancel()
        second.cancel()
        assert sim.step() is False
        assert sim.peek_time() is None
        assert sim.now == 0.0  # skipping cancelled events keeps the clock

    def test_run_failure_leaves_simulator_reusable(self):
        """A callback exception must not leave _running latched."""
        sim = Simulator()

        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            sim.run()
        fired = []
        sim.schedule(2.0, lambda: fired.append(2))
        sim.run()  # the failed run released the reentrancy latch
        assert fired == [2]


class TestEventOrderingProperty:
    @given(st.lists(st.tuples(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        st.integers(min_value=-3, max_value=3)), min_size=1, max_size=60))
    def test_firing_order_is_sorted(self, entries):
        sim = Simulator()
        fired = []
        for time, priority in entries:
            sim.schedule(time, lambda t=time, p=priority: fired.append((t, p)),
                         priority=priority)
        sim.run()
        assert fired == sorted(fired, key=lambda tp: (tp[0], tp[1]))

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=50))
    def test_clock_never_moves_backwards(self, times):
        sim = Simulator()
        observed = []
        for time in times:
            sim.schedule(time, lambda: observed.append(sim.now))
        sim.run()
        assert all(t2 >= t1 for t1, t2 in zip(observed, observed[1:]))

    def test_event_repr_states(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        assert "pending" in repr(event)
        event.cancel()
        assert "cancelled" in repr(event)
