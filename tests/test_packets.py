"""Tests for the packet model and per-packet records."""

import pytest

from repro.traffic.packets import Packet, PacketRecord


class TestPacket:
    def test_defaults(self):
        packet = Packet(1500)
        assert packet.size_bytes == 1500
        assert packet.flow == "cross"
        assert packet.seq == -1

    def test_size_bits(self):
        assert Packet(1500).size_bits == 12000
        assert Packet(40).size_bits == 320

    def test_uids_unique(self):
        a, b = Packet(100), Packet(100)
        assert a.uid != b.uid

    def test_flow_label(self):
        assert Packet(100, flow="probe").flow == "probe"

    @pytest.mark.parametrize("bad", [0, -1, -1500])
    def test_rejects_nonpositive_size(self, bad):
        with pytest.raises(ValueError):
            Packet(bad)


class TestPacketRecord:
    def make(self, arrival=1.0, hol=2.0, departure=3.5):
        record = PacketRecord(Packet(1500, flow="probe"), arrival=arrival)
        record.hol = hol
        record.departure = departure
        return record

    def test_access_delay(self):
        assert self.make().access_delay == pytest.approx(1.5)

    def test_system_delay(self):
        assert self.make().system_delay == pytest.approx(2.5)

    def test_queueing_delay(self):
        assert self.make().queueing_delay == pytest.approx(1.0)

    def test_incomplete_record_delays_are_none(self):
        record = PacketRecord(Packet(100), arrival=0.0)
        assert record.access_delay is None
        assert record.system_delay is None
        assert record.queueing_delay is None

    def test_completed_requires_departure(self):
        record = PacketRecord(Packet(100), arrival=0.0)
        assert not record.completed
        record.hol = 0.0
        record.departure = 1.0
        assert record.completed

    def test_dropped_record_not_completed(self):
        record = self.make()
        record.dropped = True
        assert not record.completed

    def test_zero_queueing_delay_when_promoted_on_arrival(self):
        record = self.make(arrival=1.0, hol=1.0, departure=2.0)
        assert record.queueing_delay == 0.0
        assert record.access_delay == pytest.approx(1.0)
