"""Tests for the shared slot-timing constants (repro.mac.timing)."""

import numpy as np
import pytest

from repro.mac.backoff import BackoffState
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.timing import SlotTiming, contention_window, cw_table


class TestContentionWindow:
    def test_matches_backoff_state_progression(self):
        phy = PhyParams.dot11b()
        state = BackoffState(phy, np.random.default_rng(0))
        for stage in range(phy.max_backoff_stage + 1):
            state.stage = stage
            assert state.current_cw() == contention_window(phy, stage)

    def test_doubles_until_cap(self):
        phy = PhyParams.dot11b()
        assert contention_window(phy, 0) == 31
        assert contention_window(phy, 1) == 63
        assert contention_window(phy, phy.max_backoff_stage) == phy.cw_max
        # Past the cap it stays clamped.
        assert contention_window(phy, phy.max_backoff_stage + 3) == phy.cw_max

    def test_negative_stage_rejected(self):
        with pytest.raises(ValueError):
            contention_window(PhyParams.dot11b(), -1)

    def test_table_covers_every_stage(self):
        phy = PhyParams.dot11g()
        table = cw_table(phy)
        assert len(table) == phy.max_backoff_stage + 1
        assert table[0] == phy.cw_min
        assert table[-1] == phy.cw_max
        assert np.all(np.diff(table) >= 0)


class TestSlotTiming:
    def test_matches_phy_and_airtime_model(self):
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        timing = SlotTiming.for_size(phy, 1500)
        assert timing.slot == phy.slot_time
        assert timing.sifs == phy.sifs
        assert timing.difs == phy.difs
        assert timing.data_airtime == airtime.data_airtime(1500)
        assert timing.ack_airtime == airtime.ack_airtime()

    def test_busy_period_equals_success_and_collision_duration(self):
        """For equal-size frames a collision lasts exactly as long as a
        success — the invariant the vector kernel's single busy period
        relies on."""
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        timing = SlotTiming.for_size(phy, 1500)
        assert timing.busy_period == pytest.approx(
            airtime.success_duration(1500))
        assert timing.busy_period == pytest.approx(
            airtime.collision_duration([1500, 1500]))

    def test_default_phy_is_dot11b(self):
        assert SlotTiming.for_size() == SlotTiming.for_size(
            PhyParams.dot11b(), 1500)


class TestSlotTimingRts:
    def test_rts_fields_match_airtime_model(self):
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        timing = SlotTiming.for_size(phy, 1500, rts=True)
        assert timing.rts_preamble == pytest.approx(
            airtime.rts_preamble_duration())
        assert timing.contention_airtime == pytest.approx(
            airtime.rts_airtime())
        assert timing.success_busy == pytest.approx(
            airtime.rts_preamble_duration()
            + airtime.success_duration(1500))
        assert timing.collision_busy == pytest.approx(
            airtime.rts_airtime() + phy.sifs + airtime.ack_airtime())

    def test_basic_access_keeps_single_busy_period(self):
        """Without RTS the success/collision split collapses back to
        the one busy period the saturated kernel always used."""
        timing = SlotTiming.for_size(PhyParams.dot11b(), 1500)
        assert timing.rts_preamble == 0.0
        assert timing.success_busy == pytest.approx(timing.busy_period)
        assert timing.collision_busy == pytest.approx(timing.busy_period)

    def test_rts_collision_cheaper_than_basic(self):
        """The handshake's point: a protected collision occupies the
        medium for far less than a colliding 1500-byte DATA frame."""
        basic = SlotTiming.for_size(PhyParams.dot11b(), 1500)
        rts = SlotTiming.for_size(PhyParams.dot11b(), 1500, rts=True)
        assert rts.collision_busy < 0.5 * basic.collision_busy
