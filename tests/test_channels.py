"""Tests for the simulated channel backends."""

import numpy as np
import pytest

from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import PacketPair, ProbeTrain


@pytest.fixture
def wlan_channel():
    return SimulatedWlanChannel([("cross", PoissonGenerator(2e6, 1500))],
                                warmup=0.1)


class TestSimulatedWlanChannel:
    def test_returns_all_packets(self, wlan_channel):
        train = ProbeTrain.at_rate(10, 4e6)
        raw = wlan_channel.send_train(train, seed=1)
        assert len(raw.send_times) == 10
        assert len(raw.recv_times) == 10
        assert len(raw.access_delays) == 10

    def test_send_times_match_train_gaps(self, wlan_channel):
        train = ProbeTrain.at_rate(5, 2e6)
        raw = wlan_channel.send_train(train, seed=2)
        assert np.allclose(np.diff(raw.send_times), train.gap)

    def test_recv_after_send(self, wlan_channel):
        raw = wlan_channel.send_train(ProbeTrain.at_rate(5, 2e6), seed=3)
        assert np.all(raw.recv_times > raw.send_times)

    def test_same_seed_reproducible(self, wlan_channel):
        train = ProbeTrain.at_rate(5, 2e6)
        a = wlan_channel.send_train(train, seed=4)
        b = wlan_channel.send_train(train, seed=4)
        assert np.array_equal(a.recv_times, b.recv_times)

    def test_different_seeds_differ(self, wlan_channel):
        train = ProbeTrain.at_rate(5, 2e6)
        a = wlan_channel.send_train(train, seed=5)
        b = wlan_channel.send_train(train, seed=6)
        assert not np.array_equal(a.recv_times, b.recv_times)

    def test_send_trains_independent(self, wlan_channel):
        raws = wlan_channel.send_trains(ProbeTrain.at_rate(3, 2e6), 5,
                                        seed=7)
        assert len(raws) == 5
        starts = {r.send_times[0] for r in raws}
        assert len(starts) == 5  # per-repetition start jitter

    def test_repetitions_validation(self, wlan_channel):
        with pytest.raises(ValueError):
            wlan_channel.send_trains(ProbeTrain.at_rate(3, 2e6), 0)

    def test_fifo_cross_traffic_slows_probe(self):
        plain = SimulatedWlanChannel([], warmup=0.1, start_jitter=0.0)
        loaded = SimulatedWlanChannel(
            [], fifo_cross=PoissonGenerator(2e6, 1500, flow="fifo"),
            warmup=0.1, start_jitter=0.0)
        train = ProbeTrain.at_rate(30, 6e6)
        gap_plain = np.mean([
            (r.recv_times[-1] - r.recv_times[0]) / (train.n - 1)
            for r in plain.send_trains(train, 10, seed=8)])
        gap_loaded = np.mean([
            (r.recv_times[-1] - r.recv_times[0]) / (train.n - 1)
            for r in loaded.send_trains(train, 10, seed=8)])
        assert gap_loaded > gap_plain

    def test_horizon_covers_drain(self, wlan_channel):
        train = ProbeTrain.at_rate(100, 8e6)
        horizon = wlan_channel.horizon_for(train)
        assert horizon > wlan_channel.warmup + train.duration

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SimulatedWlanChannel([], warmup=-1.0)
        with pytest.raises(ValueError):
            SimulatedWlanChannel([], drain_rate_floor=0.0)

    def test_queue_logging_exposed(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, 1500))],
            warmup=0.1, log_cross_queues=True)
        raw = channel.send_train(ProbeTrain.at_rate(5, 4e6), seed=9)
        sizes = raw.scenario.station("cross").queue_size_at(raw.send_times)
        assert len(sizes) == 5

    def test_immediate_access_ablation_slows_first_packet(self):
        kwargs = dict(warmup=0.1, start_jitter=0.0)
        on = SimulatedWlanChannel([], immediate_access=True, **kwargs)
        off = SimulatedWlanChannel([], immediate_access=False, **kwargs)
        train = ProbeTrain.at_rate(2, 1e6)
        first_on = np.mean([r.access_delays[0] for r in
                            on.send_trains(train, 20, seed=10)])
        first_off = np.mean([r.access_delays[0] for r in
                             off.send_trains(train, 20, seed=10)])
        assert first_on < first_off


class TestSimulatedFifoChannel:
    def test_empty_link_train_undisturbed(self):
        channel = SimulatedFifoChannel(10e6, start_jitter=0.0)
        train = ProbeTrain.at_rate(10, 2e6)
        raw = channel.send_train(train, seed=1)
        gaps = np.diff(raw.recv_times)
        assert np.allclose(gaps, train.gap)

    def test_pair_dispersion_equals_service_time(self):
        channel = SimulatedFifoChannel(10e6)
        raw = channel.send_train(PacketPair(), seed=2)
        assert raw.recv_times[1] - raw.recv_times[0] == pytest.approx(
            1500 * 8 / 10e6)

    def test_cross_traffic_inflates_gaps(self):
        empty = SimulatedFifoChannel(10e6, start_jitter=0.0)
        loaded = SimulatedFifoChannel(
            10e6, cross_generator=PoissonGenerator(6e6, 1500),
            start_jitter=0.0)
        train = ProbeTrain.at_rate(50, 8e6)
        gap_empty = np.mean([
            (r.recv_times[-1] - r.recv_times[0]) / 49
            for r in empty.send_trains(train, 5, seed=3)])
        gap_loaded = np.mean([
            (r.recv_times[-1] - r.recv_times[0]) / 49
            for r in loaded.send_trains(train, 5, seed=3)])
        assert gap_loaded > gap_empty

    def test_access_delay_is_service_time(self):
        channel = SimulatedFifoChannel(10e6)
        raw = channel.send_train(ProbeTrain.at_rate(5, 1e6), seed=4)
        assert np.allclose(raw.access_delays, 1500 * 8 / 10e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedFifoChannel(10e6, warmup=-1)
        with pytest.raises(ValueError):
            SimulatedFifoChannel(10e6, drain_rate_floor=-1)
