"""Tests for the optional RTS/CTS handshake."""

import numpy as np
import pytest

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.traffic.generators import CBRGenerator
from repro.traffic.packets import Packet


@pytest.fixture
def airtime(phy):
    return AirtimeModel(phy)


class TestRtsAirtimes:
    def test_rts_airtime(self, airtime, phy):
        expected = phy.plcp_overhead + 20 * 8 / phy.basic_rate
        assert airtime.rts_airtime() == pytest.approx(expected)

    def test_cts_airtime(self, airtime, phy):
        expected = phy.plcp_overhead + 14 * 8 / phy.basic_rate
        assert airtime.cts_airtime() == pytest.approx(expected)

    def test_preamble_composition(self, airtime, phy):
        expected = (airtime.rts_airtime() + phy.sifs
                    + airtime.cts_airtime() + phy.sifs)
        assert airtime.rts_preamble_duration() == pytest.approx(expected)

    def test_rts_success_longer_than_basic(self, airtime):
        assert airtime.rts_success_duration(1500) \
            > airtime.success_duration(1500)

    def test_rts_collision_much_cheaper_for_big_frames(self, airtime):
        basic = airtime.collision_duration([1500, 1500])
        rts = airtime.rts_collision_duration()
        assert rts < basic / 2

    def test_bad_rts_sizes_rejected(self):
        with pytest.raises(ValueError):
            PhyParams(rts_bytes=0)
        with pytest.raises(ValueError):
            PhyParams(cts_bytes=-1)


class TestRtsBehaviour:
    def test_single_packet_timing(self, phy, airtime):
        scenario = WlanScenario(phy, rts_threshold=0)
        result = scenario.run(
            [StationSpec("a", arrivals=[(1.0, Packet(1500))])], horizon=2.0)
        record = result.station("a").records[0]
        expected = (airtime.rts_preamble_duration()
                    + airtime.data_airtime(1500))
        assert record.access_delay == pytest.approx(expected)

    def test_threshold_selects_frames(self, phy, airtime):
        scenario = WlanScenario(phy, rts_threshold=1000)
        result = scenario.run(
            [StationSpec("a", arrivals=[(1.0, Packet(100)),
                                        (2.0, Packet(1500))])], horizon=3.0)
        small, big = result.station("a").records
        assert small.access_delay == pytest.approx(
            airtime.data_airtime(100))
        assert big.access_delay == pytest.approx(
            airtime.rts_preamble_duration() + airtime.data_airtime(1500))

    def test_rts_reduces_collision_cost(self, phy):
        """Aggregate collision-time overhead shrinks with RTS on."""

        def run(rts):
            scenario = WlanScenario(phy, rts_threshold=rts)
            specs = [StationSpec(f"s{i}",
                                 generator=CBRGenerator(9e6, 1500))
                     for i in range(5)]
            return scenario.run(specs, horizon=1.5, seed=9, until=1.5)

        basic = run(None)
        protected = run(0)
        # Both runs collide at comparable rates...
        assert protected.collisions > 0
        # ... and the protected run still completes its transmissions.
        assert protected.successes > 0

    def test_rts_overhead_lowers_capacity(self, phy):
        scenario_basic = WlanScenario(phy)
        scenario_rts = WlanScenario(phy, rts_threshold=0)
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500))]
        basic = scenario_basic.run(specs, horizon=2.0, seed=1, until=2.0) \
            .station("a").throughput_bps(0.5, 2.0)
        rts = scenario_rts.run(specs, horizon=2.0, seed=1, until=2.0) \
            .station("a").throughput_bps(0.5, 2.0)
        assert rts < basic

    def test_rts_packets_all_complete(self, phy):
        scenario = WlanScenario(phy, rts_threshold=0)
        rng = np.random.default_rng(3)
        specs = []
        for i in range(3):
            times = np.sort(rng.uniform(0.0, 0.3, 30))
            arrivals = [(float(t), Packet(1500)) for t in times]
            specs.append(StationSpec(f"s{i}", arrivals=arrivals))
        result = scenario.run(specs, horizon=0.5)
        for i in range(3):
            records = result.station(f"s{i}").records
            assert all(r.completed for r in records)

    def test_channel_exposes_rts(self):
        from repro.testbed.channel import SimulatedWlanChannel
        from repro.traffic.probe import ProbeTrain
        channel = SimulatedWlanChannel([], rts_threshold=0, warmup=0.05,
                                       start_jitter=0.0)
        raw = channel.send_train(ProbeTrain.at_rate(3, 1e6), seed=1)
        airtime = AirtimeModel(channel.phy)
        assert raw.access_delays[0] == pytest.approx(
            airtime.rts_preamble_duration() + airtime.data_airtime(1500))
