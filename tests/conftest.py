"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.traffic.generators import CBRGenerator, PoissonGenerator


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def phy():
    """Default 802.11b PHY parameters."""
    return PhyParams.dot11b()


@pytest.fixture
def scenario(phy):
    """A default WLAN scenario builder."""
    return WlanScenario(phy)


@pytest.fixture
def saturated_pair_result(scenario):
    """Two saturated stations contending for 1.5 simulated seconds."""
    specs = [
        StationSpec("a", generator=CBRGenerator(9e6, 1500)),
        StationSpec("b", generator=CBRGenerator(9e6, 1500)),
    ]
    return scenario.run(specs, horizon=1.5, seed=7, until=1.5)


@pytest.fixture
def probe_vs_poisson_result(scenario):
    """A 2 Mb/s probe against 3 Mb/s Poisson cross-traffic."""
    specs = [
        StationSpec("probe", generator=CBRGenerator(2e6, 1500, flow="probe")),
        StationSpec("cross", generator=PoissonGenerator(3e6, 1500)),
    ]
    return scenario.run(specs, horizon=1.5, seed=11, until=1.5)
