"""Shared fixtures for the test suite.

Besides the plain object fixtures, this file owns the KS-pin
machinery shared across the suite (implementations in
``tests/helpers.py`` so test modules can import them by name):

* :func:`ks_assert` — the one two-sample KS assertion every
  equivalence pin uses (``alpha = 0.01``, the repo-wide pin level);
* ``helpers.seed_params`` — master-seed parametrization for the
  seed-robustness sweep: the first seed runs everywhere (tier-1), the
  extra seeds carry the ``seed_sweep`` marker and are skipped unless
  the run selects them (the CI ``pytest -m seed_sweep`` job), so the
  sweep catches seed-lottery passes without slowing tier-1 down.
"""

import numpy as np
import pytest

from helpers import ks_assert_impl
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.traffic.generators import CBRGenerator, PoissonGenerator


#: Markers whose tests only run when the invocation selects them
#: (dedicated CI jobs), keeping tier-1 fast.
_GATED_MARKERS = {
    "seed_sweep": "extra master seed; runs in the seed_sweep CI job "
                  "(pytest -m seed_sweep)",
    "chaos": "fault-injection end-to-end; runs in the chaos CI job "
             "(pytest -m chaos)",
}


def pytest_collection_modifyitems(config, items):
    """Skip gated markers unless the run asks for them by name."""
    expression = config.getoption("-m") or ""
    for marker, reason in _GATED_MARKERS.items():
        if marker in expression:
            continue
        skip = pytest.mark.skip(reason=reason)
        for item in items:
            if marker in item.keywords:
                item.add_marker(skip)


@pytest.fixture(scope="session")
def ks_assert():
    """The shared two-sample KS assertion
    (see :func:`helpers.ks_assert_impl`)."""
    return ks_assert_impl


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def phy():
    """Default 802.11b PHY parameters."""
    return PhyParams.dot11b()


@pytest.fixture
def scenario(phy):
    """A default WLAN scenario builder."""
    return WlanScenario(phy)


@pytest.fixture
def saturated_pair_result(scenario):
    """Two saturated stations contending for 1.5 simulated seconds."""
    specs = [
        StationSpec("a", generator=CBRGenerator(9e6, 1500)),
        StationSpec("b", generator=CBRGenerator(9e6, 1500)),
    ]
    return scenario.run(specs, horizon=1.5, seed=7, until=1.5)


@pytest.fixture
def probe_vs_poisson_result(scenario):
    """A 2 Mb/s probe against 3 Mb/s Poisson cross-traffic."""
    specs = [
        StationSpec("probe", generator=CBRGenerator(2e6, 1500, flow="probe")),
        StationSpec("cross", generator=PoissonGenerator(3e6, 1500)),
    ]
    return scenario.run(specs, horizon=1.5, seed=11, until=1.5)
