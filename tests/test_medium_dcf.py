"""Behavioural tests for the DCF medium and stations.

These pin the protocol semantics: immediate access on idle-DIFS
arrival, backoff after a busy medium, collision handling with binary
exponential backoff, retry-limit drops, medium exclusivity and
conservation of packets.
"""

import numpy as np
import pytest

from repro.mac.frames import AirtimeModel
from repro.mac.medium import Medium
from repro.mac.params import PhyParams
from repro.mac.station import Station
from repro.sim.engine import Simulator
from repro.traffic.packets import Packet


@pytest.fixture
def phy():
    return PhyParams.dot11b()


@pytest.fixture
def airtime(phy):
    return AirtimeModel(phy)


def build(phy, n_stations=1, seed=0, retry_limit=None, immediate=True):
    sim = Simulator()
    medium = Medium(sim, phy, np.random.default_rng(seed),
                    retry_limit=retry_limit, immediate_access=immediate)
    stations = [Station(f"s{i}", sim, medium) for i in range(n_stations)]
    return sim, medium, stations


def enqueue_at(sim, station, time, size=1500, flow="cross"):
    sim.schedule(time, lambda: station.enqueue(Packet(size, flow=flow)))


class TestImmediateAccess:
    def test_first_packet_transmits_immediately(self, phy, airtime):
        sim, medium, (station,) = build(phy)
        enqueue_at(sim, station, 1.0)
        sim.run()
        record = station.records[0]
        assert record.hol == 1.0
        assert record.departure == pytest.approx(
            1.0 + airtime.data_airtime(1500))
        assert record.access_delay == pytest.approx(
            airtime.data_airtime(1500))

    def test_arrival_long_after_previous_burst_is_immediate(self, phy, airtime):
        sim, medium, (station,) = build(phy)
        enqueue_at(sim, station, 1.0)
        enqueue_at(sim, station, 2.0)  # far beyond the first exchange
        sim.run()
        second = station.records[1]
        assert second.access_delay == pytest.approx(
            airtime.data_airtime(1500))

    def test_disabled_immediate_access_forces_backoff(self, phy, airtime):
        sim, medium, (station,) = build(phy, immediate=False)
        enqueue_at(sim, station, 1.0)
        sim.run()
        record = station.records[0]
        # DIFS plus at least zero backoff slots before the data frame.
        minimum = airtime.data_airtime(1500) + phy.difs
        maximum = minimum + phy.cw_min * phy.slot_time
        assert minimum - 1e-12 <= record.access_delay <= maximum + 1e-12

    def test_immediate_access_mean_delay_smaller(self, phy):
        def mean_first_delay(immediate):
            delays = []
            for seed in range(40):
                sim, _, (station,) = build(phy, seed=seed,
                                           immediate=immediate)
                enqueue_at(sim, station, 1.0)
                sim.run()
                delays.append(station.records[0].access_delay)
            return np.mean(delays)

        assert mean_first_delay(True) < mean_first_delay(False)


class TestQueueing:
    def test_second_packet_waits_for_first(self, phy, airtime):
        sim, medium, (station,) = build(phy)
        enqueue_at(sim, station, 1.0)
        enqueue_at(sim, station, 1.0)  # back-to-back pair
        sim.run()
        first, second = station.records
        assert second.hol == pytest.approx(first.departure)
        # The second packet waits for the ACK, DIFS and its backoff.
        floor = (phy.sifs + airtime.ack_airtime() + phy.difs
                 + airtime.data_airtime(1500))
        ceiling = floor + phy.cw_min * phy.slot_time
        assert floor - 1e-12 <= second.access_delay <= ceiling + 1e-12

    def test_hol_follows_lindley_recursion(self, phy):
        sim, medium, (station,) = build(phy, seed=3)
        times = [1.0, 1.001, 1.002, 1.5, 1.5001, 2.0]
        for t in times:
            enqueue_at(sim, station, t)
        sim.run()
        previous_departure = -np.inf
        for record in station.records:
            expected_hol = max(record.arrival, previous_departure)
            assert record.hol == pytest.approx(expected_hol)
            previous_departure = record.departure

    def test_backlog_returns_to_zero(self, phy):
        sim, medium, (station,) = build(phy)
        for t in [1.0, 1.0, 1.0, 1.1]:
            enqueue_at(sim, station, t)
        sim.run()
        assert station.backlog == 0
        assert all(r.completed for r in station.records)

    def test_fifo_departure_order(self, phy):
        sim, medium, (station,) = build(phy, seed=5)
        for t in np.linspace(1.0, 1.05, 20):
            enqueue_at(sim, station, float(t))
        sim.run()
        departures = [r.departure for r in station.records]
        assert departures == sorted(departures)


class TestCollisions:
    def test_simultaneous_arrivals_collide(self, phy):
        sim, medium, stations = build(phy, n_stations=2, seed=1)
        enqueue_at(sim, stations[0], 1.0)
        enqueue_at(sim, stations[1], 1.0)
        sim.run()
        assert medium.collisions >= 1
        for station in stations:
            assert station.records[0].completed
            assert station.records[0].retries >= 1

    def test_collision_then_backoff_resolution(self, phy):
        sim, medium, stations = build(phy, n_stations=2, seed=2)
        enqueue_at(sim, stations[0], 1.0)
        enqueue_at(sim, stations[1], 1.0)
        sim.run()
        departures = sorted(s.records[0].departure for s in stations)
        # After the collision the two retransmissions must be serialized.
        assert departures[1] > departures[0]

    def test_retry_limit_drops_packet(self, phy):
        sim, medium, stations = build(phy, n_stations=2, seed=3,
                                      retry_limit=0)
        enqueue_at(sim, stations[0], 1.0)
        enqueue_at(sim, stations[1], 1.0)
        sim.run()
        assert all(s.records[0].dropped for s in stations)
        assert all(not s.records[0].completed for s in stations)

    def test_dropped_packet_frees_queue(self, phy):
        sim, medium, stations = build(phy, n_stations=2, seed=4,
                                      retry_limit=0)
        enqueue_at(sim, stations[0], 1.0)
        enqueue_at(sim, stations[1], 1.0)
        enqueue_at(sim, stations[0], 1.0)  # queued behind the drop
        sim.run()
        assert stations[0].records[0].dropped
        assert stations[0].records[1].completed

    def test_collision_counter_consistent(self, phy):
        sim, medium, stations = build(phy, n_stations=3, seed=5)
        for station in stations:
            for t in np.linspace(1.0, 1.2, 40):
                enqueue_at(sim, station, float(t))
        sim.run()
        assert medium.successes == 3 * 40
        assert medium.collisions > 0

    def test_no_collisions_single_station(self, phy):
        sim, medium, (station,) = build(phy)
        for t in np.linspace(1.0, 1.5, 50):
            enqueue_at(sim, station, float(t))
        sim.run()
        assert medium.collisions == 0
        assert all(r.retries == 0 for r in station.records)


class TestMediumExclusivity:
    def _data_intervals(self, stations, airtime):
        intervals = []
        for station in stations:
            for record in station.completed_records():
                length = airtime.data_airtime(record.packet.size_bytes)
                intervals.append((record.departure - length,
                                  record.departure))
        return sorted(intervals)

    def test_successful_transmissions_never_overlap(self, phy, airtime):
        sim, medium, stations = build(phy, n_stations=3, seed=6)
        rng = np.random.default_rng(0)
        for station in stations:
            for t in rng.uniform(1.0, 1.4, 50):
                enqueue_at(sim, station, float(t))
        sim.run()
        intervals = self._data_intervals(stations, airtime)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9

    def test_interframe_spacing_between_exchanges(self, phy, airtime):
        sim, medium, (station,) = build(phy)
        for t in [1.0, 1.0, 1.0]:
            enqueue_at(sim, station, t)
        sim.run()
        records = station.records
        for prev, cur in zip(records, records[1:]):
            gap = ((cur.departure
                    - airtime.data_airtime(cur.packet.size_bytes))
                   - prev.departure)
            # At least SIFS + ACK + DIFS between consecutive frames.
            assert gap >= (phy.sifs + airtime.ack_airtime() + phy.difs
                           - 1e-12)


class TestConservationAndFairness:
    def test_all_packets_complete_without_retry_limit(self, phy):
        sim, medium, stations = build(phy, n_stations=4, seed=7)
        rng = np.random.default_rng(1)
        total = 0
        for station in stations:
            for t in rng.uniform(1.0, 2.0, 60):
                enqueue_at(sim, station, float(t))
                total += 1
        sim.run()
        completed = sum(len(s.completed_records()) for s in stations)
        assert completed == total

    def test_saturated_stations_fair(self, saturated_pair_result):
        a = saturated_pair_result.station("a").throughput_bps(0.5, 1.5)
        b = saturated_pair_result.station("b").throughput_bps(0.5, 1.5)
        assert abs(a - b) / max(a, b) < 0.2

    def test_heterogeneous_sizes_complete(self, phy):
        sim, medium, stations = build(phy, n_stations=2, seed=8)
        for t in np.linspace(1.0, 1.1, 30):
            enqueue_at(sim, stations[0], float(t), size=40)
            enqueue_at(sim, stations[1], float(t), size=1500)
        sim.run()
        assert all(len(s.completed_records()) == 30 for s in stations)

    def test_access_delay_always_at_least_airtime(self, phy, airtime):
        sim, medium, stations = build(phy, n_stations=2, seed=9)
        rng = np.random.default_rng(2)
        for station in stations:
            for t in rng.uniform(1.0, 1.3, 40):
                enqueue_at(sim, station, float(t))
        sim.run()
        floor = airtime.data_airtime(1500)
        for station in stations:
            delays = station.access_delays()
            assert np.all(delays >= floor - 1e-12)
