"""Tests for the wired FIFO hop."""

import numpy as np
import pytest

from repro.queueing.fifo import FifoHop
from repro.traffic.packets import Packet
from repro.traffic.probe import ProbeTrain


class TestFifoHop:
    def test_service_time(self):
        hop = FifoHop(10e6)
        assert hop.service_time(Packet(1250)) == pytest.approx(1e-3)

    def test_service_time_with_overhead(self):
        hop = FifoHop(10e6, overhead_bytes=250)
        assert hop.service_time(Packet(1000)) == pytest.approx(1e-3)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FifoHop(0.0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ValueError):
            FifoHop(1e6, overhead_bytes=-1)

    def test_single_packet_timing(self):
        hop = FifoHop(10e6)
        result = hop.run([(1.0, Packet(1250))])
        record = result.records[0]
        assert record.hol == 1.0
        assert record.departure == pytest.approx(1.001)

    def test_fifo_across_flows(self):
        hop = FifoHop(10e6)
        result = hop.run([
            (0.0, Packet(1250, flow="cross")),
            (0.0001, Packet(1250, flow="probe")),
        ])
        probe = result.by_flow("probe")[0]
        cross = result.by_flow("cross")[0]
        assert probe.hol == pytest.approx(cross.departure)

    def test_unsorted_input_sorted_internally(self):
        hop = FifoHop(10e6)
        result = hop.run([(1.0, Packet(100)), (0.0, Packet(100))])
        arrivals = [r.arrival for r in result.records]
        assert arrivals == sorted(arrivals)

    def test_throughput(self):
        hop = FifoHop(10e6)
        train = ProbeTrain.at_rate(11, 5e6, 1250)
        result = hop.run(train.packets())
        # 10 full gaps at 2 ms carrying 10 kb each.
        t0, t1 = result.records[0].departure, result.records[-1].departure
        assert result.throughput_bps(t0, t1, flow="probe") \
            == pytest.approx(5e6, rel=0.01)

    def test_output_gap_undisturbed_train(self):
        hop = FifoHop(10e6)
        train = ProbeTrain.at_rate(10, 2e6, 1250)
        result = hop.run(train.packets())
        assert result.output_gap() == pytest.approx(train.gap, rel=1e-9)

    def test_output_gap_backlogged_train_is_service_time(self):
        hop = FifoHop(10e6)
        train = ProbeTrain.at_rate(10, 50e6, 1250)
        result = hop.run(train.packets())
        assert result.output_gap() == pytest.approx(
            hop.service_time(Packet(1250)), rel=1e-9)

    def test_output_gap_needs_two_packets(self):
        hop = FifoHop(10e6)
        result = hop.run([(0.0, Packet(100, flow="probe"))])
        with pytest.raises(ValueError):
            result.output_gap()

    def test_utilization(self):
        hop = FifoHop(10e6)
        result = hop.run([(0.0, Packet(1250))])
        assert result.utilization(0.0, 2e-3) == pytest.approx(0.5)

    def test_throughput_window_validation(self):
        hop = FifoHop(10e6)
        result = hop.run([(0.0, Packet(1250))])
        with pytest.raises(ValueError):
            result.throughput_bps(1.0, 1.0)


class TestFifoRateResponse:
    """The hop must obey equation (1) against fluid-enough cross-traffic."""

    def test_below_available_bandwidth_untouched(self, rng):
        from repro.traffic.generators import PoissonGenerator
        hop = FifoHop(10e6)
        cross = PoissonGenerator(4e6, 200).generate(2.0, rng)
        train = ProbeTrain.at_rate(200, 3e6, 1500)
        arrivals = list(train.packets(start=0.5)) + list(cross)
        result = hop.run(arrivals)
        gap = result.output_gap()
        assert 1500 * 8 / gap == pytest.approx(3e6, rel=0.05)

    def test_above_available_bandwidth_shared(self, rng):
        from repro.analytic.rate_response import fifo_rate_response
        from repro.traffic.generators import PoissonGenerator
        hop = FifoHop(10e6)
        rate = 8e6
        cross = PoissonGenerator(4e6, 200).generate(4.0, rng)
        train = ProbeTrain.at_rate(1200, rate, 1500)
        arrivals = list(train.packets(start=0.5)) + list(cross)
        result = hop.run(arrivals)
        measured = 1500 * 8 / result.output_gap()
        expected = float(fifo_rate_response(np.array([rate]), 10e6, 6e6)[0])
        assert measured == pytest.approx(expected, rel=0.05)
