"""KS pins for the two capabilities vectorized by this PR.

Retry-limited DCF and on-off cross-traffic were the last two
event-only capabilities; these pins hold their kernels to the event
engine with the repo's KS machinery at ``alpha = 0.01``, per the PR-5
cookbook (fixed seeds = deterministic regressions; the extra master
seeds run under ``-m seed_sweep``).

Methodology note: pooled KS over the full ``reps x n_probe`` delay
matrix assumes iid samples, but every probe of a repetition shares one
cross-traffic sample path.  For bursty on-off traffic (and for FIFO
queue coupling) that within-repetition correlation is strong enough
that the *event engine fails the pooled test against itself* at some
seeds.  The probe-train pins below therefore compare per-repetition
statistics — the rep-mean delay and fixed probe indices — which are
iid across repetitions.  The saturated pins pool: saturated delays mix
over thousands of contention rounds per repetition and the pooled
variant passed its null checks.
"""

import numpy as np
import pytest

from helpers import seed_params
from repro.analysis.saturation import simulate_saturated
from repro.sim.delay_model import retry_drop_probability
from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import OnOffGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain

L = 1500


class TestRetrySaturatedEquivalence:
    """The saturated kernel's retry-cap mode vs. the event medium.

    ``retry_limit=1`` drops a few percent of offered packets, so both
    the delivered-delay distribution (truncated backoff stages) and
    the per-repetition drop rate carry signal.
    """

    S, P, R, M = 5, 20, 60, 1

    @pytest.fixture(scope="class", params=seed_params(0, 7, 23))
    def batches(self, request):
        seed = request.param
        event = simulate_saturated(self.S, self.P, self.R, seed=seed,
                                   retry_limit=self.M, backend="event")
        vector = simulate_saturated(self.S, self.P, self.R, seed=seed,
                                    retry_limit=self.M, backend="vector")
        return event, vector

    def test_delivered_delay_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event.pooled_access_delays(),
                  vector.pooled_access_delays())

    def test_drop_rate_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event.drop_rate(), vector.drop_rate())

    def test_mean_drop_rates_close(self, batches):
        event, vector = batches
        assert event.drop_rate().mean() == pytest.approx(
            vector.drop_rate().mean(), rel=0.25)

    def test_both_backends_report_drops(self, batches):
        """The cap actually bites on both backends, and roughly at the
        geometric model's order of magnitude."""
        from repro.analytic.bianchi import BianchiModel
        p = BianchiModel().solve(self.S).collision_probability
        predicted = retry_drop_probability(p, self.M)
        for batch in batches:
            rate = batch.drop_rate().mean()
            assert 0.3 * predicted < rate < 3.0 * predicted

    def test_throughput_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event.throughput_bps(), vector.throughput_bps())


class TestRetryProbeTrainEquivalence:
    """Probe trains through a retry-limited channel on both backends.

    ``retry_limit=4`` keeps probe-packet drops out of reach (the event
    channel raises on a lost probe) while still threading the retry
    counters through every contention round of the kernel.
    """

    N, REPS = 20, 100

    @pytest.fixture(scope="class", params=seed_params(3, 43, 83))
    def pair(self, request):
        seed = request.param
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.1,
            retry_limit=4)
        train = ProbeTrain.at_rate(self.N, 5e6, L)
        event = channel.send_trains_dense(train, self.REPS, seed=seed,
                                          backend="event")
        vector = channel.send_trains_dense(train, self.REPS, seed=seed,
                                           backend="vector")
        return event, vector

    def test_no_probe_packet_dropped(self, pair):
        _, vector = pair
        assert not np.isnan(vector.access_delays).any()

    def test_rep_mean_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays.mean(axis=1),
                  vector.access_delays.mean(axis=1))

    def test_fixed_index_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        for idx in (0, 10):
            ks_assert(event.access_delays[:, idx],
                      vector.access_delays[:, idx])

    def test_mean_delay_close(self, pair):
        event, vector = pair
        assert event.access_delays.mean() == pytest.approx(
            vector.access_delays.mean(), rel=0.15)


@pytest.mark.slow
class TestOnOffCrossEquivalence:
    """Probe trains against bursty on-off cross-traffic.

    The capability whose within-repetition correlation forced the
    per-repetition methodology: all 20 probes of a repetition ride one
    on-off sample path, so rep means and fixed indices are compared at
    200 repetitions (thresholds validated against the event engine's
    own null distribution).
    """

    N, REPS = 20, 200

    @pytest.fixture(scope="class", params=seed_params(17, 99, 5))
    def pair(self, request):
        seed = request.param
        channel = SimulatedWlanChannel(
            [("burst", OnOffGenerator(6e6, 0.05, 0.05, L))], warmup=0.1)
        train = ProbeTrain.at_rate(self.N, 4e6, L)
        event = channel.send_trains_dense(train, self.REPS, seed=seed,
                                          backend="event")
        vector = channel.send_trains_dense(train, self.REPS, seed=seed,
                                           backend="vector")
        return event, vector

    def test_rep_mean_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        ks_assert(event.access_delays.mean(axis=1),
                  vector.access_delays.mean(axis=1))

    def test_fixed_index_delay_distributions_match(self, pair, ks_assert):
        event, vector = pair
        for idx in (0, 10):
            ks_assert(event.access_delays[:, idx],
                      vector.access_delays[:, idx])

    def test_rep_spread_distributions_match(self, pair, ks_assert):
        """Burstiness signature: the within-train delay spread."""
        event, vector = pair
        ks_assert(event.access_delays.std(axis=1),
                  vector.access_delays.std(axis=1))

    def test_mean_delay_close(self, pair):
        event, vector = pair
        assert event.access_delays.mean() == pytest.approx(
            vector.access_delays.mean(), rel=0.15)

    def test_burstiness_visible_on_both_backends(self, pair):
        """Both backends agree the on-off path spreads the train far
        more than its own per-probe noise floor — the property the
        ext-onoff study quantifies."""
        for batch in pair:
            spread = batch.access_delays.std(axis=1)
            assert spread.max() > 2 * np.median(spread)
