"""Tests for the experiment registry (repro.runtime.registry)."""

import numpy as np
import pytest

from repro.analysis.results import ExperimentResult
from repro.runtime import registry
from repro.runtime.cache import ResultCache
from repro.runtime.registry import Experiment


def toy_runner(repetitions: int = 4, seed: int = 0) -> ExperimentResult:
    """A tiny deterministic stand-in for an analysis runner."""
    rng = np.random.default_rng(seed)
    x = np.arange(1, repetitions + 1, dtype=float)
    out = ExperimentResult(
        experiment="toy", title="Toy", x_label="n", x=x,
        series={"y": rng.normal(size=repetitions)},
        meta={"repetitions": repetitions, "seed": seed})
    out.add_check("always", True)
    return out


@pytest.fixture
def toy(request):
    experiment = Experiment(name="toy-reg", runner=toy_runner,
                            scalable={"repetitions": 100})
    registry.register(experiment)
    request.addfinalizer(lambda: registry.unregister("toy-reg"))
    return experiment


class TestRegistration:
    def test_register_get_unregister(self, toy):
        assert registry.get("toy-reg") is toy
        assert "toy-reg" in registry.names()

    def test_duplicate_name_rejected(self, toy):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(toy)

    def test_unknown_name_suggests(self):
        with pytest.raises(KeyError, match="available:"):
            registry.get("no-such-experiment")

    def test_builtin_registry_complete(self):
        assert len(registry.experiments()) == 25
        groups = {e.group for e in registry.experiments()}
        assert groups == {"figure", "baseline", "ablation", "extension"}

    def test_backend_coverage_matches_declared_set(self):
        multi = {e.name for e in registry.experiments()
                 if e.backends != ("event",)}
        assert multi == set(registry.VECTOR_EXPERIMENTS)
        for name in sorted(multi):
            backends = registry.get(name).backends
            # Every kernel-capable experiment offers the jit tier too,
            # except the multi-hop path (no jit twin for the path
            # kernel).
            if name == "ext-multihop":
                assert backends == ("event", "vector")
            else:
                assert backends == ("event", "vector", "jit")
        # The vector-coverage gap is closed: the queue-trace, RTS,
        # CBR-saturation and multi-hop-path experiments joined the
        # probe-train family, so every registry entry is dual-backend.
        assert {"fig1", "fig4", "fig6", "fig13", "fig15", "eq1",
                "bounds", "ext-saturation"} <= multi
        assert {"fig8", "ablation-bianchi", "ablation-rts",
                "ext-multihop"} <= multi
        assert multi == set(registry.names())

    def test_backends_derived_from_scenario(self):
        """The registry never hand-maintains backend lists: stripping
        the scenario strips the vector backend."""
        fig6 = registry.get("fig6")
        assert fig6.backends == ("event", "vector", "jit")
        bare = Experiment(name="bare", runner=fig6.runner,
                          scalable=dict(fig6.scalable))
        assert bare.backends == ("event",)
        assert len(registry.VECTOR_EXPERIMENTS) >= 17

    def test_descriptions_populated(self):
        for experiment in registry.experiments():
            assert experiment.description, experiment.name


class TestKwargsResolution:
    def test_scale_and_floor(self, toy):
        assert toy.kwargs_for(scale=0.5)["repetitions"] == 50
        assert toy.kwargs_for(scale=1e-9)["repetitions"] == 2
        assert toy.kwargs_for(scale=0.001, minimum=7)["repetitions"] == 7

    def test_rejects_nonpositive_scale(self, toy):
        with pytest.raises(ValueError):
            toy.kwargs_for(scale=0.0)

    def test_default_seed_from_signature(self, toy):
        assert toy.default_seed() == 0
        assert toy.kwargs_for()["seed"] == 0

    def test_overrides_win(self, toy):
        kwargs = toy.kwargs_for(scale=0.5, seed=3,
                                overrides={"repetitions": 8, "seed": 9})
        assert kwargs == {"repetitions": 8, "seed": 9}

    def test_seedless_runner(self):
        experiment = Experiment(name="seedless", runner=toy_runner,
                                seed_kwarg=None)
        assert experiment.default_seed() is None
        assert "seed" not in experiment.kwargs_for()

    def test_single_backend_experiment_omits_backend_kwarg(self, toy):
        assert "backend" not in toy.kwargs_for()
        assert "backend" not in toy.kwargs_for(backend="event")

    def test_unsupported_backend_rejected(self, toy):
        with pytest.raises(ValueError, match="supports backend"):
            toy.kwargs_for(backend="vector")

    def test_multi_backend_kwarg_materialised(self):
        experiment = registry.get("ext-saturation")
        assert experiment.kwargs_for()["backend"] == "event"
        assert experiment.kwargs_for(backend="vector")["backend"] == "vector"

    def test_backend_via_overrides_is_validated(self, toy):
        """The bench harness passes backend as a plain override kwarg;
        that door must be guarded like the parameter."""
        with pytest.raises(ValueError, match="takes no backend"):
            toy.kwargs_for(overrides={"backend": "vector"})
        with pytest.raises(ValueError, match="takes no backend"):
            toy.kwargs_for(overrides={"backend": "event"})
        experiment = registry.get("ext-saturation")
        assert experiment.kwargs_for(
            overrides={"backend": "vector"})["backend"] == "vector"
        with pytest.raises(ValueError, match="supports backend"):
            experiment.kwargs_for(overrides={"backend": "quantum"})


class TestRun:
    def test_run_returns_report(self, toy):
        report = toy.run(scale=0.04, seed=5)
        assert report.result.experiment == "toy"
        assert report.cached is False
        assert report.cache_key is None
        assert report.kwargs == {"repetitions": 4, "seed": 5}
        assert report.elapsed_s >= 0.0

    def test_jobs_do_not_change_result(self, toy):
        serial = toy.run(scale=0.1, seed=11)
        parallel = toy.run(scale=0.1, seed=11, jobs=4)
        assert serial.result.table() == parallel.result.table()

    def test_jobs_none_defers_to_environment(self, monkeypatch):
        from repro.runtime import executor

        observed = []

        def probing_runner(seed: int = 0) -> ExperimentResult:
            """Runner that records the ambient job count."""
            observed.append(executor.active_jobs())
            return toy_runner(repetitions=2, seed=seed)

        experiment = Experiment(name="toy-env", runner=probing_runner)
        monkeypatch.setenv(executor.JOBS_ENV, "3")
        experiment.run()
        experiment.run(jobs=2)
        assert observed == [3, 2]  # None -> env var; explicit wins

    def test_cache_hit_skips_runner(self, tmp_path):
        calls = []

        def counting_runner(repetitions: int = 4,
                            seed: int = 0) -> ExperimentResult:
            """Toy runner that records invocations."""
            calls.append((repetitions, seed))
            return toy_runner(repetitions=repetitions, seed=seed)

        experiment = Experiment(name="toy-count", runner=counting_runner,
                                scalable={"repetitions": 100})
        cache = ResultCache(root=tmp_path)
        first = experiment.run(scale=0.04, seed=5, cache=cache)
        second = experiment.run(scale=0.04, seed=5, cache=cache)
        assert first.cached is False
        assert second.cached is True
        assert second.cache_key == first.cache_key
        assert second.result.table() == first.result.table()
        assert calls == [(4, 5)]  # the hit never re-ran the runner

    def test_refresh_reruns_and_restores(self, toy, tmp_path):
        cache = ResultCache(root=tmp_path)
        toy.run(scale=0.04, seed=5, cache=cache)
        refreshed = toy.run(scale=0.04, seed=5, cache=cache, refresh=True)
        assert refreshed.cached is False
        again = toy.run(scale=0.04, seed=5, cache=cache)
        assert again.cached is True

    def test_different_seed_misses_cache(self, toy, tmp_path):
        cache = ResultCache(root=tmp_path)
        toy.run(scale=0.04, seed=5, cache=cache)
        other = toy.run(scale=0.04, seed=6, cache=cache)
        assert other.cached is False

    def test_backends_cache_separately(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        experiment = registry.get("ext-saturation")
        overrides = {"station_counts": (1, 2), "packets_per_station": 5}
        event = experiment.run(scale=0.02, seed=1, backend="event",
                               overrides=overrides, cache=cache)
        vector = experiment.run(scale=0.02, seed=1, backend="vector",
                                overrides=overrides, cache=cache)
        assert vector.cached is False  # distinct key per backend
        assert vector.cache_key != event.cache_key
        again = experiment.run(scale=0.02, seed=1, backend="vector",
                               overrides=overrides, cache=cache)
        assert again.cached is True


class TestRealExperimentIntegration:
    """End-to-end over a real (tiny) figure run."""

    def test_fig6_jobs_and_cache_round_trip(self, tmp_path):
        cache = ResultCache(root=tmp_path)
        experiment = registry.get("fig6")
        live = experiment.run(scale=0.02, seed=7, jobs=2, cache=cache)
        assert live.cached is False
        cached = experiment.run(scale=0.02, seed=7, jobs=1, cache=cache)
        assert cached.cached is True
        assert cached.result.table() == live.result.table()
