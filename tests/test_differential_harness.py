"""Property-based differential harness: random scenarios, two backends.

The hand-written KS pins each freeze one operating point; this module
drives the whole dispatch surface with generated scenarios instead.
For every :class:`tests.strategies.ScenarioCase` drawn by hypothesis:

* the channel's compiled :class:`~repro.backends.ScenarioSpec` is
  resolved through ``repro.backends.dispatch`` and the resolution is
  checked against the case's actual eligibility (a trace-replay cross
  station is the one event-only axis left);
* eligible cases run on *both* backends at the same master seed and
  their delay and train-span (throughput) distributions are
  KS-compared at a *family-wise* ``alpha = 0.01`` using
  per-repetition statistics — probes within a repetition share one
  cross-traffic sample path, so pooled KS would be anti-conservative
  (see ``tests/test_retry_onoff_equivalence.py``).  The per-comparison
  level is Bonferroni-corrected over all ~90 comparisons of a run;
  without the correction ~1 null failure per run is *expected* (and
  was observed — a heavily atomic FIFO-only delay distribution at 30
  repetitions hit KS 0.50 against a same-backend null topping out at
  0.40).  Gross kernel/engine divergence still trips the corrected
  threshold; the hand-written pins at 100-200 repetitions remain the
  fine-grained instruments;
* event-only cases must fall back with a recorded reason on ``auto``
  and raise :class:`~repro.backends.BackendUnavailableError` when
  ``vector`` is forced.

hypothesis is optional (the CI smoke lane ships only numpy+scipy):
without it the module's tests skip.  ``derandomize=True`` makes the
example stream a deterministic regression suite rather than a flaky
sampler — the same >= 25 scenarios run on every invocation.
"""

import numpy as np
import pytest

from helpers import ks_assert_impl as _ks_assert
from repro.backends import EVENT, BackendUnavailableError
from strategies import HAS_HYPOTHESIS, scenario_cases

if HAS_HYPOTHESIS:
    from hypothesis import HealthCheck, given, settings

REPS = 40
MAX_EXAMPLES = 30

#: Family-wise level, split (Bonferroni) over every KS comparison a
#: full harness run can make: 3 statistics per eligible example.
FAMILY_ALPHA = 0.01
KS_ALPHA = FAMILY_ALPHA / (3 * MAX_EXAMPLES)

#: Cases seen by the @given test, consumed by the coverage audit below.
_seen = {"total": 0, "eligible": 0, "event_only": 0}


def _check_event_only(case, channel, train):
    resolution = channel.resolve_backend("auto", train=train)
    assert resolution.backend is EVENT
    assert "batched arrival sampler" in resolution.fallback
    with pytest.raises(BackendUnavailableError):
        channel.resolve_backend("vector", train=train)
    _seen["event_only"] += 1


def _check_differential(case, channel, train):
    resolution = channel.resolve_backend("auto", train=train)
    assert resolution.name == "vector", resolution
    assert resolution.kernel == "probe-train kernel"
    assert resolution.fallback is None

    event = channel.send_trains_dense(train, REPS, seed=case.seed,
                                      backend="event")
    vector = channel.send_trains_dense(train, REPS, seed=case.seed,
                                       backend="vector")
    assert vector.access_delays.shape == (REPS, case.n_probe)
    assert not np.isnan(vector.access_delays).any(), \
        "kernel dropped a probe packet the event engine delivered"

    # Per-repetition statistics (iid across repetitions): the mean
    # access delay, the transient-critical first probe, and the train
    # span (receive-side dispersion, the throughput observable).
    _ks_assert(event.access_delays.mean(axis=1),
               vector.access_delays.mean(axis=1), alpha=KS_ALPHA)
    _ks_assert(event.access_delays[:, 0], vector.access_delays[:, 0],
               alpha=KS_ALPHA)
    _ks_assert(event.recv_times[:, -1] - event.recv_times[:, 0],
               vector.recv_times[:, -1] - vector.recv_times[:, 0],
               alpha=KS_ALPHA)
    _seen["eligible"] += 1


if HAS_HYPOTHESIS:

    @pytest.mark.slow
    @settings(max_examples=MAX_EXAMPLES, deadline=None, derandomize=True,
              database=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(case=scenario_cases())
    def test_random_scenarios_agree_across_backends(case):
        _seen["total"] += 1
        channel = case.build_channel()
        train = case.train()
        spec = channel.scenario_spec(train=train)
        assert spec.retry_limit == (case.retry_limit is not None)
        if case.event_only:
            assert spec.cross_traffic == "other"
            _check_event_only(case, channel, train)
        else:
            _check_differential(case, channel, train)

else:  # pragma: no cover - exercised in the smoke lane

    def test_random_scenarios_agree_across_backends():
        pytest.skip("hypothesis is not installed; differential "
                    "harness needs it to generate scenarios")


@pytest.mark.slow
def test_harness_covered_enough_scenarios():
    """Audit the @given run: >= 25 generated specs went through
    dispatch and both dispatch outcomes (kernel and event-only
    fallback) were exercised."""
    if _seen["total"] == 0:
        pytest.skip("differential harness did not run in this session")
    assert _seen["total"] >= 25, _seen
    assert _seen["eligible"] >= 15, _seen
    assert _seen["event_only"] >= 1, _seen
    assert _seen["eligible"] + _seen["event_only"] == _seen["total"]
