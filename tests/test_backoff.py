"""Tests for the binary exponential backoff state machine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.backoff import BackoffState
from repro.mac.params import PhyParams


@pytest.fixture
def backoff(rng):
    return BackoffState(PhyParams.dot11b(), rng)


class TestContentionWindow:
    def test_initial_cw(self, backoff):
        assert backoff.current_cw() == 31

    def test_doubling(self, backoff):
        expected = [31, 63, 127, 255, 511, 1023]
        for cw in expected:
            assert backoff.current_cw() == cw
            backoff.stage += 1

    def test_capped_at_cw_max(self, backoff):
        backoff.stage = 50
        assert backoff.current_cw() == 1023


class TestDraw:
    def test_draw_within_window(self, backoff):
        for _ in range(200):
            value = backoff.draw()
            assert 0 <= value <= 31

    def test_draw_uniform_mean(self, rng):
        backoff = BackoffState(PhyParams.dot11b(), rng)
        draws = [backoff.draw() for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(15.5, abs=0.7)

    def test_draw_covers_extremes(self, rng):
        backoff = BackoffState(PhyParams.dot11b(), rng)
        draws = {backoff.draw() for _ in range(2000)}
        assert 0 in draws and 31 in draws

    def test_ensure_drawn_idempotent(self, backoff):
        first = backoff.ensure_drawn()
        assert backoff.ensure_drawn() == first

    def test_ensure_drawn_draws_when_none(self, backoff):
        assert backoff.remaining is None
        backoff.ensure_drawn()
        assert backoff.remaining is not None


class TestConsume:
    def test_consume_decrements(self, backoff):
        backoff.remaining = 10
        backoff.consume(3)
        assert backoff.remaining == 7

    def test_consume_to_zero(self, backoff):
        backoff.remaining = 5
        backoff.consume(5)
        assert backoff.remaining == 0

    def test_consume_without_pending_raises(self, backoff):
        with pytest.raises(ValueError):
            backoff.consume(1)

    def test_consume_too_many_raises(self, backoff):
        backoff.remaining = 2
        with pytest.raises(ValueError):
            backoff.consume(3)

    def test_consume_negative_raises(self, backoff):
        backoff.remaining = 2
        with pytest.raises(ValueError):
            backoff.consume(-1)


class TestStageTransitions:
    def test_collision_increases_stage_and_redraws(self, backoff):
        backoff.draw()
        backoff.on_collision()
        assert backoff.stage == 1
        assert 0 <= backoff.remaining <= 63

    def test_collision_stage_capped(self, backoff):
        for _ in range(20):
            backoff.on_collision()
        assert backoff.stage == PhyParams.dot11b().max_backoff_stage

    def test_success_resets(self, backoff):
        backoff.on_collision()
        backoff.on_success()
        assert backoff.stage == 0
        assert backoff.remaining is None

    def test_reset(self, backoff):
        backoff.stage = 3
        backoff.remaining = 7
        backoff.reset()
        assert backoff.stage == 0
        assert backoff.remaining is None


class TestBackoffProperties:
    @settings(max_examples=30, deadline=None)
    @given(collisions=st.integers(min_value=0, max_value=12),
           seed=st.integers(min_value=0, max_value=2**31))
    def test_draw_always_within_current_window(self, collisions, seed):
        backoff = BackoffState(PhyParams.dot11b(),
                               np.random.default_rng(seed))
        backoff.ensure_drawn()
        for _ in range(collisions):
            backoff.on_collision()
        assert 0 <= backoff.remaining <= backoff.current_cw()

    @settings(max_examples=30, deadline=None)
    @given(stage=st.integers(min_value=0, max_value=10))
    def test_cw_formula(self, stage):
        backoff = BackoffState(PhyParams.dot11b(),
                               np.random.default_rng(0))
        backoff.stage = stage
        expected = min(1023, 32 * 2 ** stage - 1)
        assert backoff.current_cw() == expected
