"""Tests for the trace-driven (Matlab-style) queueing simulator."""

import numpy as np
import pytest

from repro.queueing.trace import TraceDrivenQueue


class TestServiceSpecs:
    def test_scalar_service(self):
        queue = TraceDrivenQueue(0.5)
        result = queue.run([0.0, 1.0])
        assert np.allclose(result.services, 0.5)

    def test_sequence_service(self):
        queue = TraceDrivenQueue([0.5, 0.25])
        result = queue.run([0.0, 1.0])
        assert list(result.services) == [0.5, 0.25]

    def test_sequence_length_mismatch(self):
        queue = TraceDrivenQueue([0.5])
        with pytest.raises(ValueError):
            queue.run([0.0, 1.0])

    def test_callable_service(self):
        queue = TraceDrivenQueue(lambda i, rng: 0.1 * (i + 1))
        result = queue.run([0.0, 0.0, 0.0])
        assert np.allclose(result.services, [0.1, 0.2, 0.3])

    def test_callable_gets_rng(self, rng):
        queue = TraceDrivenQueue(lambda i, r: float(r.uniform(0.1, 0.2)))
        result = queue.run([0.0, 1.0], rng=rng)
        assert np.all((result.services >= 0.1) & (result.services <= 0.2))

    def test_negative_scalar_rejected(self):
        queue = TraceDrivenQueue(-0.5)
        with pytest.raises(ValueError):
            queue.run([0.0])


class TestResultMetrics:
    def test_waiting_times(self):
        result = TraceDrivenQueue(1.0).run([0.0, 0.5])
        assert np.allclose(result.waiting_times, [0.0, 0.5])

    def test_sojourn_times(self):
        result = TraceDrivenQueue(1.0).run([0.0, 0.5])
        assert np.allclose(result.sojourn_times, [1.0, 1.5])

    def test_output_gaps(self):
        result = TraceDrivenQueue(1.0).run([0.0, 0.0, 5.0])
        assert np.allclose(result.output_gaps, [1.0, 4.0])

    def test_output_gap_train_level(self):
        result = TraceDrivenQueue(1.0).run([0.0, 0.0, 0.0])
        assert result.output_gap == pytest.approx(1.0)

    def test_output_gap_needs_two(self):
        result = TraceDrivenQueue(1.0).run([0.0])
        with pytest.raises(ValueError):
            _ = result.output_gap

    def test_queue_length_at(self):
        result = TraceDrivenQueue(1.0).run([0.0, 0.1, 0.2])
        lengths = result.queue_length_at(np.array([0.05, 0.5, 10.0]))
        assert lengths[0] == 1
        assert lengths[1] == 3
        assert lengths[2] == 0

    def test_queue_length_distribution_sums_to_one(self):
        result = TraceDrivenQueue(0.5).run(np.linspace(0, 5, 30))
        dist = result.queue_length_distribution(0.0, 6.0)
        assert dist.sum() == pytest.approx(1.0)

    def test_queue_length_distribution_window_validation(self):
        result = TraceDrivenQueue(0.5).run([0.0])
        with pytest.raises(ValueError):
            result.queue_length_distribution(1.0, 1.0)


class TestConvolutionUseCase:
    def test_replaying_measured_access_delays(self):
        """The Matlab-simulator use case: arrivals convolved with
        index-dependent service times reproduce the transient shape."""
        transient = np.array([1e-3] * 2 + [2e-3] * 8)  # fast then slow
        queue = TraceDrivenQueue(lambda i, rng: float(transient[i]))
        gap = 1.5e-3
        result = queue.run(np.arange(10) * gap)
        # Early packets fly through; later ones queue.
        assert result.waiting_times[1] == pytest.approx(0.0, abs=1e-12)
        assert result.waiting_times[-1] > 0.0
        # Output gap exceeds input gap once the 2 ms services dominate.
        assert result.output_gap > gap
