"""Smoke tests for the ablation and extension runners.

Tiny parameters; structural assertions only.  The full-size versions
with shape checks run in the benchmark harness.
"""

import numpy as np
import pytest

from repro.analysis.ablations import (
    ablation_bianchi_calibration,
    ablation_immediate_access,
    ablation_ks_methods,
    ablation_rts_cts,
    ablation_truncation_heuristics,
)
from repro.analysis.extensions import (
    tool_convergence_study,
    transient_b_vs_n,
)


class TestAblationRunners:
    def test_bianchi_calibration(self):
        result = ablation_bianchi_calibration(
            station_counts=(1, 2), duration=1.5, warmup=0.3, seed=1)
        assert result.all_checks_pass
        assert np.all(result.series["simulated_bps"] > 1e6)

    def test_immediate_access(self):
        result = ablation_immediate_access(
            n_packets=50, repetitions=60, seed=2)
        assert "dcf_mean_delay_s" in result.series
        assert result.checks["rule-creates-acceleration"]

    def test_ks_methods(self):
        result = ablation_ks_methods(n_packets=50, repetitions=80, seed=3)
        assert result.checks["interpolated-has-floor"]

    def test_rts_cts(self):
        result = ablation_rts_cts(n_packets=50, repetitions=60, seed=4)
        assert result.checks["rts-adds-overhead"]
        assert result.checks["transient-survives-rts"]

    def test_truncation_heuristics(self):
        result = ablation_truncation_heuristics(repetitions=50, seed=5)
        assert result.meta["methods"] == "raw,mser2,mser1,fixed"
        assert result.checks["raw-overestimates"]


class TestExtensionRunners:
    def test_transient_b_vs_n(self):
        result = transient_b_vs_n(
            train_lengths=(2, 5, 20, 60), repetitions=80, seed=6)
        b = result.series["B_n_bps"]
        assert b[0] > b[-1]
        assert result.checks["short-trains-exceed-steady"]

    def test_transient_b_vs_n_validation(self):
        with pytest.raises(ValueError):
            transient_b_vs_n(train_lengths=(1, 5), repetitions=5)

    def test_tool_convergence(self):
        result = tool_convergence_study(
            cross_rates_bps=[4e6], n_packets=40, repetitions=5, seed=7)
        estimate = result.series["tool_estimate_bps"][0]
        available = result.series["available_A_bps"][0]
        assert estimate > available

    def test_topp_on_wlan(self):
        from repro.analysis.extensions import topp_on_wlan_study
        result = topp_on_wlan_study(
            cross_rates_bps=[4e6], n_packets=150, repetitions=5, seed=8)
        capacity = result.meta["capacity_bps"]
        assert result.series["topp_capacity_bps"][0] < 0.8 * capacity

    def test_multihop_access_path(self):
        from repro.analysis.extensions import multihop_access_path_study
        result = multihop_access_path_study(
            probe_rates_bps=np.array([1e6, 3e6, 5e6]),
            n_packets=30, repetitions=6, seed=9)
        assert "path_L_over_Ego_bps" in result.series
        assert result.meta["pair_estimate_bps"] < 0.2 * 100e6
