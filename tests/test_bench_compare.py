"""Tests for the benchmark-regression gate (tools/bench_compare.py)."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "tools"))

import bench_compare  # noqa: E402


def write_bench_json(path, medians):
    """Write a minimal pytest-benchmark JSON payload."""
    payload = {"benchmarks": [
        {"name": name, "stats": {"median": median}}
        for name, median in medians.items()]}
    path.write_text(json.dumps(payload))
    return path


class TestLoadMedians:
    def test_round_trip(self, tmp_path):
        path = write_bench_json(tmp_path / "run.json",
                                {"bench_a": 0.01, "bench_b": 0.5})
        assert bench_compare.load_medians(path) == {
            "bench_a": 0.01, "bench_b": 0.5}

    def test_empty_payload(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({}))
        assert bench_compare.load_medians(path) == {}


class TestCompare:
    def test_within_threshold_passes(self, capsys):
        failures = bench_compare.compare(
            {"a": 0.012}, {"a": 0.010}, threshold=0.25)
        assert failures == []
        assert "ok" in capsys.readouterr().out

    def test_regression_detected(self, capsys):
        failures = bench_compare.compare(
            {"a": 0.014}, {"a": 0.010}, threshold=0.25)
        assert len(failures) == 1
        assert "1.40x" in failures[0]
        assert "REGRESSION" in capsys.readouterr().out

    def test_faster_never_fails(self):
        assert bench_compare.compare(
            {"a": 0.001}, {"a": 0.010}, threshold=0.25) == []

    def test_new_and_retired_benchmarks_reported_not_failed(self, capsys):
        failures = bench_compare.compare(
            {"new": 0.01}, {"old": 0.01}, threshold=0.25)
        assert failures == []
        out = capsys.readouterr().out
        assert "no baseline yet" in out
        assert "missing from current run" in out

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            bench_compare.compare({}, {}, threshold=0.0)

    def test_normalize_forgives_uniform_slowdown(self):
        """A 2x-slower machine shifts every ratio equally; the
        normalized gate must not fire."""
        baseline = {"a": 0.010, "b": 0.020, "c": 0.040}
        current = {name: 2.0 * median for name, median in baseline.items()}
        assert bench_compare.compare(current, baseline, 0.25) != []
        assert bench_compare.compare(current, baseline, 0.25,
                                     normalize=True) == []

    def test_normalize_still_catches_relative_regression(self):
        baseline = {"a": 0.010, "b": 0.010, "c": 0.010, "d": 0.010}
        current = dict(baseline, a=0.030)  # one bench 3x slower
        failures = bench_compare.compare(current, baseline, 0.25,
                                         normalize=True)
        assert len(failures) == 1
        assert failures[0].startswith("a:")


class TestMain:
    def test_clean_gate_exits_zero(self, tmp_path, capsys):
        current = write_bench_json(tmp_path / "cur.json", {"a": 0.010})
        baseline = write_bench_json(tmp_path / "base.json", {"a": 0.010})
        assert bench_compare.main([str(current), str(baseline)]) == 0
        assert "benchmark gate clean" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        current = write_bench_json(tmp_path / "cur.json", {"a": 0.020})
        baseline = write_bench_json(tmp_path / "base.json", {"a": 0.010})
        assert bench_compare.main([str(current), str(baseline)]) == 1
        assert "regression" in capsys.readouterr().err

    def test_custom_threshold(self, tmp_path):
        current = write_bench_json(tmp_path / "cur.json", {"a": 0.020})
        baseline = write_bench_json(tmp_path / "base.json", {"a": 0.010})
        assert bench_compare.main(
            [str(current), str(baseline), "--threshold", "1.5"]) == 0

    def test_normalize_flag(self, tmp_path, capsys):
        current = write_bench_json(tmp_path / "cur.json",
                                   {"a": 0.030, "b": 0.060})
        baseline = write_bench_json(tmp_path / "base.json",
                                    {"a": 0.010, "b": 0.020})
        assert bench_compare.main([str(current), str(baseline)]) == 1
        capsys.readouterr()
        assert bench_compare.main(
            [str(current), str(baseline), "--normalize"]) == 0
        assert "calibration" in capsys.readouterr().out

    def test_empty_current_run_is_an_error(self, tmp_path, capsys):
        current = tmp_path / "cur.json"
        current.write_text(json.dumps({"benchmarks": []}))
        baseline = write_bench_json(tmp_path / "base.json", {"a": 0.010})
        assert bench_compare.main([str(current), str(baseline)]) == 2
        assert "no benchmarks" in capsys.readouterr().err
