"""Tests for the vectorized probe-train backend (repro.sim.probe_vector).

The load-bearing guarantees:

* the kernel is deterministic, uses the executor's seed-derivation
  scheme, and repetition streams are independent of the batch size;
* its access-delay and output-gap distributions are statistically
  equivalent (KS, alpha=0.01) to the event engine's on the same
  channel — across multiple cross-traffic rates, with and without
  FIFO cross-traffic sharing the probe queue;
* the channel/prober/runner layers route batches to it when (and only
  when) the ``vector`` backend is selected, and reject channels the
  kernel cannot model;
* the wired-FIFO vector path (batched Lindley) replays the event
  path's sample paths to float rounding.
"""

import numpy as np
import pytest

from helpers import seed_params
from repro.core.dispersion import TrainBatch, output_gaps_batch
from repro.core.estimators import (
    mean_output_rate,
    packet_pair_capacity,
    train_dispersion_rate,
)
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.runtime import executor, registry
from repro.sim.probe_vector import (
    PoissonCrossSpec,
    simulate_probe_train_batch,
)
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import CBRGenerator, PoissonGenerator
from repro.traffic.probe import PacketPair, ProbeTrain

L = 1500


def _spec(rate_bps, size=L):
    return PoissonCrossSpec(rate_bps / (size * 8), size)


def _kernel_kwargs(channel, train):
    return dict(size_bytes=train.size_bytes,
                cross=[PoissonCrossSpec.from_generator(g)
                       for _, g in channel.cross_stations],
                horizon=channel.horizon_for(train),
                warmup=channel.warmup,
                start_jitter=channel.start_jitter)


class TestKernelBasics:
    def test_shapes_and_validity(self):
        train = ProbeTrain.at_rate(12, 4e6, L)
        batch = simulate_probe_train_batch(
            train.n, train.gap, 9, size_bytes=L, cross=[_spec(2e6)],
            horizon=0.6, seed=5)
        assert batch.send_times.shape == (9, 12)
        assert batch.recv_times.shape == (9, 12)
        assert batch.access_delays.shape == (9, 12)
        assert not np.isnan(batch.recv_times).any()
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)
        assert np.all(batch.access_delays > 0)
        assert np.all(batch.recv_times > batch.send_times)

    def test_deterministic_run_to_run(self):
        kwargs = dict(size_bytes=L, cross=[_spec(3e6)], horizon=0.6, seed=9)
        one = simulate_probe_train_batch(10, 0.003, 12, **kwargs)
        two = simulate_probe_train_batch(10, 0.003, 12, **kwargs)
        assert np.array_equal(one.recv_times, two.recv_times)
        assert np.array_equal(one.access_delays, two.access_delays)

    def test_seed_changes_results(self):
        one = simulate_probe_train_batch(10, 0.003, 12, size_bytes=L,
                                         cross=[_spec(3e6)], horizon=0.6,
                                         seed=9)
        other = simulate_probe_train_batch(10, 0.003, 12, size_bytes=L,
                                           cross=[_spec(3e6)], horizon=0.6,
                                           seed=10)
        assert not np.array_equal(one.recv_times, other.recv_times)

    def test_repetition_streams_independent_of_batch_size(self):
        """Repetition r sees the same universe in any batch that
        contains it — the executor seed-mapping contract."""
        kwargs = dict(size_bytes=L, cross=[_spec(4e6)], horizon=0.7, seed=2)
        small = simulate_probe_train_batch(15, 0.0024, 4, **kwargs)
        large = simulate_probe_train_batch(15, 0.0024, 16, **kwargs)
        assert np.array_equal(small.send_times, large.send_times[:4])
        assert np.array_equal(small.recv_times, large.recv_times[:4])
        assert np.array_equal(small.access_delays, large.access_delays[:4])

    def test_uncontended_low_rate_train_is_all_immediate(self):
        """With no cross-traffic and a slow train, every packet meets
        an idle medium and pays exactly one DATA airtime."""
        airtime = AirtimeModel(PhyParams.dot11b())
        batch = simulate_probe_train_batch(8, 0.01, 5, size_bytes=L,
                                           horizon=0.5, seed=1)
        assert np.allclose(batch.access_delays, airtime.data_airtime(L))

    def test_backlogged_train_serializes(self):
        """A back-to-back train with no contention drains as one busy
        period: consecutive departures one success duration apart."""
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        batch = simulate_probe_train_batch(6, 0.0, 4, size_bytes=L,
                                           horizon=0.5, seed=3)
        gaps = np.diff(batch.recv_times, axis=1)
        # Each subsequent packet waits SIFS + ACK + DIFS + backoff
        # before its own DATA frame; the gap is at least the frame
        # exchange and at most exchange + CW0 slots.
        floor = (airtime.data_airtime(L) + phy.sifs
                 + airtime.ack_airtime() + phy.difs)
        ceiling = floor + (phy.cw_min + 1) * phy.slot_time
        assert np.all(gaps >= floor - 1e-12)
        assert np.all(gaps <= ceiling + 1e-12)

    def test_immediate_access_disabled_first_packet_backs_off(self):
        airtime = AirtimeModel(PhyParams.dot11b())
        batch = simulate_probe_train_batch(
            4, 0.01, 60, size_bytes=L, horizon=0.5, seed=4,
            immediate_access=False)
        first = batch.access_delays[:, 0]
        assert np.any(first > airtime.data_airtime(L) + 1e-9)
        assert np.all(first >= airtime.data_airtime(L) - 1e-12)

    def test_fifo_cross_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="probe size"):
            simulate_probe_train_batch(
                5, 0.01, 3, size_bytes=L, fifo_cross=_spec(1e6, 576),
                horizon=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_probe_train_batch(1, 0.01, 5, horizon=0.5)
        with pytest.raises(ValueError):
            simulate_probe_train_batch(5, -0.01, 5, horizon=0.5)
        with pytest.raises(ValueError):
            simulate_probe_train_batch(5, 0.01, 0, horizon=0.5)
        with pytest.raises(ValueError):
            simulate_probe_train_batch(5, 0.01, 5, horizon=0.5, warmup=-1)


class TestEventEquivalence:
    """KS equivalence between the backends at three cross-traffic rates.

    Seeds are fixed, so these are deterministic regressions, not flaky
    statistical tests: the KS distances were measured well under the
    alpha=0.01 thresholds when the kernel was written, and a protocol
    change in either backend pushes them over.  The extra master seeds
    (``-m seed_sweep``) guard against a seed-lottery pass.
    """

    N, REPS = 20, 50
    RATES = (1e6, 2.5e6, 4e6)

    @pytest.fixture(scope="class", params=seed_params(11, 211, 311))
    def master_seed(self, request):
        return request.param

    @pytest.fixture(scope="class", params=RATES)
    def pair(self, request, master_seed):
        cross_rate = request.param
        train = ProbeTrain.at_rate(self.N, 5e6, L)
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(cross_rate, L))], warmup=0.1)
        raws = channel.send_trains(train, self.REPS, seed=master_seed)
        event_delays = np.vstack([r.access_delays for r in raws])
        event_gaps = np.array(
            [(r.recv_times[-1] - r.recv_times[0]) / (self.N - 1)
             for r in raws])
        batch = channel.send_trains_batch(train, self.REPS,
                                          seed=master_seed)
        return event_delays, event_gaps, batch

    def test_access_delay_distributions_match(self, pair, ks_assert):
        event_delays, _, batch = pair
        ks_assert(event_delays, batch.access_delays)

    def test_first_packet_delay_distributions_match(self, pair, ks_assert):
        """The transient-critical index: the very first packet."""
        event_delays, _, batch = pair
        ks_assert(event_delays[:, 0], batch.access_delays[:, 0])

    def test_output_gap_distributions_match(self, pair, ks_assert):
        _, event_gaps, batch = pair
        ks_assert(event_gaps, batch.output_gaps)

    def test_mean_metrics_close(self, pair):
        event_delays, event_gaps, batch = pair
        assert event_delays.mean() == pytest.approx(
            batch.access_delays.mean(), rel=0.15)
        assert event_gaps.mean() == pytest.approx(
            float(batch.output_gaps.mean()), rel=0.1)


class TestFifoCrossEquivalence:
    """The complete system of figure 15: FIFO + contending traffic.

    FIFO cross-traffic couples every probe of a repetition through the
    shared transmission queue, so the pooled delay matrix is *not* an
    iid sample and the pooled KS threshold is anti-conservative (the
    event engine fails it against itself at some seeds).  The pins
    therefore compare per-repetition statistics — the rep-mean delay
    and fixed probe indices — which are iid across repetitions.
    """

    N, REPS = 20, 50

    @pytest.fixture(scope="class", params=seed_params(21, 7, 99))
    def pair(self, request):
        seed = request.param
        train = ProbeTrain.at_rate(self.N, 5e6, L)
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(3e6, L))],
            fifo_cross=PoissonGenerator(1e6, L, flow="fifo"),
            warmup=0.1)
        raws = channel.send_trains(train, self.REPS, seed=seed)
        event_delays = np.vstack([r.access_delays for r in raws])
        batch = channel.send_trains_batch(train, self.REPS, seed=seed)
        return event_delays, batch

    def test_rep_mean_delay_distributions_match(self, pair, ks_assert):
        event_delays, batch = pair
        ks_assert(event_delays.mean(axis=1),
                  batch.access_delays.mean(axis=1))

    def test_fixed_index_delay_distributions_match(self, pair, ks_assert):
        event_delays, batch = pair
        for idx in (0, 10):
            ks_assert(event_delays[:, idx], batch.access_delays[:, idx])

    def test_mean_delay_close(self, pair):
        event_delays, batch = pair
        assert event_delays.mean() == pytest.approx(
            batch.access_delays.mean(), rel=0.15)

    def test_probe_packets_only_in_result(self, pair):
        _, batch = pair
        assert batch.recv_times.shape == (self.REPS, self.N)
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)


class TestChannelRouting:
    def test_vector_raws_match_batch(self):
        train = ProbeTrain.at_rate(8, 4e6, L)
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1)
        raws = channel.send_trains(train, 6, seed=5, backend="vector")
        batch = channel.send_trains_batch(train, 6, seed=5)
        assert len(raws) == 6
        for r, raw in enumerate(raws):
            assert np.array_equal(raw.send_times, batch.send_times[r])
            assert np.array_equal(raw.recv_times, batch.recv_times[r])
            assert np.array_equal(raw.access_delays,
                                  batch.access_delays[r])
            assert raw.size_bytes == L

    def test_unknown_backend_rejected(self):
        channel = SimulatedWlanChannel([])
        with pytest.raises(ValueError, match="unknown backend"):
            channel.send_trains(ProbeTrain.at_rate(4, 2e6), 2,
                                backend="quantum")

    def test_unsampleable_cross_rejected(self):
        from repro.traffic.generators import TraceGenerator
        channel = SimulatedWlanChannel(
            [("replay", TraceGenerator([(0.05, L), (0.1, L)]))])
        assert channel.vector_unsupported_reason() is not None
        with pytest.raises(ValueError, match="no vector kernel"):
            channel.send_trains(ProbeTrain.at_rate(4, 2e6), 2,
                                backend="vector")

    def test_onoff_cross_routes_to_kernel(self):
        from repro.traffic.generators import OnOffGenerator
        channel = SimulatedWlanChannel(
            [("burst", OnOffGenerator(4e6, 0.05, 0.05, L))], warmup=0.1)
        assert channel.vector_unsupported_reason() is None
        batch = channel.send_trains_batch(ProbeTrain.at_rate(6, 4e6, L),
                                          4, seed=2)
        assert batch.recv_times.shape == (4, 6)
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)

    def test_cbr_cross_routes_to_kernel(self):
        channel = SimulatedWlanChannel([("cbr", CBRGenerator(2e6, L))],
                                       warmup=0.1)
        assert channel.vector_unsupported_reason() is None
        batch = channel.send_trains_batch(ProbeTrain.at_rate(6, 4e6, L),
                                          4, seed=2)
        assert batch.recv_times.shape == (4, 6)
        assert np.all(np.diff(batch.recv_times, axis=1) > 0)

    def test_queue_tracking_supported(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1,
            log_cross_queues=True)
        assert channel.vector_unsupported_reason() is None
        train = ProbeTrain.at_rate(8, 6e6, L)
        batch = channel.send_trains_batch(train, 5, seed=4)
        assert batch.queue_traces is not None
        assert len(batch.queue_traces) == 1
        sizes = batch.queue_traces[0].size_at(batch.send_times)
        assert sizes.shape == (5, 8)
        assert np.all(sizes >= 0)

    def test_rts_and_retry_limit_supported(self):
        rts = SimulatedWlanChannel([], rts_threshold=1000)
        assert rts.vector_unsupported_reason() is None
        retry = SimulatedWlanChannel([], retry_limit=7)
        assert retry.vector_unsupported_reason() is None

    def test_rts_adds_preamble_on_quiet_channel(self):
        """On an uncontended channel every probe gets immediate access,
        so the RTS/CTS arm's delays exceed basic access by exactly the
        RTS + SIFS + CTS + SIFS preamble."""
        train = ProbeTrain.at_rate(6, 1e6, L)
        basic = SimulatedWlanChannel([], warmup=0.05) \
            .send_trains_batch(train, 3, seed=9)
        rts = SimulatedWlanChannel([], warmup=0.05, rts_threshold=0) \
            .send_trains_batch(train, 3, seed=9)
        preamble = AirtimeModel(PhyParams.dot11b()).rts_preamble_duration()
        assert np.allclose(rts.access_delays - basic.access_delays,
                           preamble, atol=1e-12)

    def test_supported_channel_reports_none(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))],
            fifo_cross=PoissonGenerator(1e6, L))
        assert channel.vector_unsupported_reason() is None


class TestFifoWiredVector:
    """The batched-Lindley path replays the event path exactly."""

    def test_matches_event_path_to_float_rounding(self):
        channel = SimulatedFifoChannel(
            10e6, cross_generator=PoissonGenerator(4e6, L),
            drain_rate_floor=2e6)
        train = ProbeTrain.at_rate(40, 6e6, L)
        event = channel.send_trains(train, 8, seed=4)
        vector = channel.send_trains(train, 8, seed=4, backend="vector")
        for a, b in zip(event, vector):
            assert np.allclose(a.send_times, b.send_times, atol=1e-9)
            assert np.allclose(a.recv_times, b.recv_times, atol=1e-9)
            assert np.allclose(a.access_delays, b.access_delays, atol=1e-9)

    def test_no_cross_traffic(self):
        channel = SimulatedFifoChannel(10e6)
        train = ProbeTrain.at_rate(10, 12e6, L)
        batch = channel.send_trains_batch(train, 3, seed=1)
        # Overloaded probe: departures serialize at the service rate.
        service = L * 8 / 10e6
        assert np.allclose(np.diff(batch.recv_times, axis=1), service)


class TestBatchedEstimators:
    @pytest.fixture(scope="class")
    def raws(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1)
        return channel.send_trains(ProbeTrain.at_rate(10, 4e6, L), 12,
                                   seed=6)

    def test_train_dispersion_rate_batch_equals_list(self, raws):
        measurements = [TrainBatchHelper.measurement(r) for r in raws]
        batch = TrainBatch.from_measurements(measurements)
        assert train_dispersion_rate(batch) == pytest.approx(
            train_dispersion_rate(measurements), rel=1e-12)

    def test_packet_pair_batch_equals_list(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1)
        raws = channel.send_trains(PacketPair(L), 15, seed=8)
        measurements = [TrainBatchHelper.measurement(r) for r in raws]
        batch = TrainBatch.from_measurements(measurements)
        assert packet_pair_capacity(batch) == pytest.approx(
            packet_pair_capacity(measurements), rel=1e-12)

    def test_mean_output_rate_batch_equals_list(self, raws):
        measurements = [TrainBatchHelper.measurement(r) for r in raws]
        batch = TrainBatch.from_measurements(measurements)
        for horizon in (False, True):
            assert mean_output_rate(
                batch, horizon_from_first_send=horizon) == pytest.approx(
                mean_output_rate(measurements,
                                 horizon_from_first_send=horizon),
                rel=1e-12)

    def test_output_gaps_batch_matches_scalar(self, raws):
        recv = np.vstack([r.recv_times for r in raws])
        gaps = output_gaps_batch(recv)
        for r, raw in enumerate(raws):
            expected = (raw.recv_times[-1] - raw.recv_times[0]) \
                / (len(raw.recv_times) - 1)
            assert gaps[r] == pytest.approx(expected, rel=1e-12)

    def test_batch_round_trip(self, raws):
        measurements = [TrainBatchHelper.measurement(r) for r in raws]
        batch = TrainBatch.from_measurements(measurements)
        back = batch.measurements()
        assert len(back) == len(measurements)
        assert np.array_equal(back[0].recv_times,
                              measurements[0].recv_times)

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            TrainBatch(np.zeros((2, 3)), np.zeros(3), L)
        with pytest.raises(ValueError):
            TrainBatch(np.zeros((2, 1)), np.zeros((2, 1)), L)
        with pytest.raises(ValueError):
            output_gaps_batch(np.zeros(5))
        with pytest.raises(ValueError):
            TrainBatch.from_measurements([])


class TrainBatchHelper:
    """Tiny adapter: RawTrainResult -> TrainMeasurement."""

    @staticmethod
    def measurement(raw):
        from repro.core.dispersion import TrainMeasurement
        return TrainMeasurement(send_times=raw.send_times,
                                recv_times=raw.recv_times,
                                size_bytes=raw.size_bytes)


class TestProberAndRunners:
    def test_prober_vector_backend(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1)
        prober = Prober(channel, ProbeSessionConfig(
            repetitions=10, ideal_clocks=True, backend="vector"))
        rate = prober.dispersion_rate(8, 4e6, seed=3)
        assert 1e6 < rate < 12e6

    def test_collect_delay_matrix_vector(self):
        from repro.analysis.transient import collect_delay_matrix
        collection = collect_delay_matrix(
            5e6, [("cross", PoissonGenerator(3e6, L))],
            n_packets=15, repetitions=12, seed=2, backend="vector")
        assert collection.matrix.delays.shape == (12, 15)
        assert collection.queue_sizes == {}

    def test_collect_delay_matrix_vector_tracks_queues(self):
        from repro.analysis.transient import collect_delay_matrix
        collection = collect_delay_matrix(
            5e6, [("cross", PoissonGenerator(3e6, L))],
            n_packets=10, repetitions=4, seed=2,
            track_queues=True, backend="vector")
        assert collection.matrix.delays.shape == (4, 10)
        assert collection.queue_sizes["cross"].shape == (4, 10)
        assert np.all(collection.queue_sizes["cross"] >= 0)

    def test_registry_experiment_runs_on_vector(self):
        report = registry.get("fig6").run(
            scale=0.05, seed=3, backend="vector",
            overrides={"n_packets": 60, "repetitions": 25})
        assert report.kwargs["backend"] == "vector"
        assert report.result.meta["backend"] == "vector"
        assert report.result.series["mean_access_delay_s"].shape == (60,)

    def test_eq1_vector_matches_event(self):
        """Wired FIFO: the two backends agree point by point."""
        from repro.analysis.baseline import eq1_fifo_rate_response
        kwargs = dict(probe_rates_bps=[4e6, 8e6], n_packets=120,
                      repetitions=4, seed=1)
        event = eq1_fifo_rate_response(backend="event", **kwargs)
        vector = eq1_fifo_rate_response(backend="vector", **kwargs)
        assert np.allclose(event.series["measured_bps"],
                           vector.series["measured_bps"], rtol=1e-9)

    def test_jobs_do_not_change_vector_result(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(2e6, L))], warmup=0.1)
        train = ProbeTrain.at_rate(8, 4e6, L)
        serial = channel.send_trains_batch(train, 6, seed=3)
        with executor.parallel_jobs(4):
            parallel = channel.send_trains_batch(train, 6, seed=3)
        assert np.array_equal(serial.recv_times, parallel.recv_times)


class TestSteadyQueueTraces:
    def test_steady_batch_tracks_queues(self):
        """The steady-state entry honours track_queues too, so the
        kernel's queue-trace capability holds for both workloads it
        advertises."""
        from repro.sim.probe_vector import (
            PoissonCrossSpec,
            simulate_steady_state_batch,
        )
        batch = simulate_steady_state_batch(
            4e6, 3, size_bytes=L,
            cross=[PoissonCrossSpec(3e6 / (L * 8), L)],
            duration=0.5, warmup=0.1, seed=2, track_queues=True)
        assert batch.queue_traces is not None
        sizes = batch.queue_traces[0].size_at(
            np.full((3, 4), [0.1, 0.2, 0.3, 0.4]))
        assert sizes.shape == (3, 4)
        assert np.all(sizes >= 0)
