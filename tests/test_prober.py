"""Tests for the probing tool."""

import numpy as np
import pytest

from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import PoissonGenerator


@pytest.fixture
def wlan_prober():
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(2e6, 1500))], warmup=0.1)
    return Prober(channel, ProbeSessionConfig(repetitions=10,
                                              ideal_clocks=True))


@pytest.fixture
def fifo_prober():
    return Prober(SimulatedFifoChannel(10e6),
                  ProbeSessionConfig(repetitions=10, ideal_clocks=True))


class TestMeasurement:
    def test_measure_train_count(self, wlan_prober):
        measurements = wlan_prober.measure_train(5, 2e6, repetitions=4)
        assert len(measurements) == 4
        assert all(m.n == 5 for m in measurements)

    def test_measure_pairs(self, wlan_prober):
        pairs = wlan_prober.measure_pairs(repetitions=3)
        assert all(m.n == 2 for m in pairs)

    def test_default_repetitions_from_config(self, wlan_prober):
        assert len(wlan_prober.measure_pairs()) == 10

    def test_ideal_clocks_expose_true_gaps(self, fifo_prober):
        m = fifo_prober.measure_train(5, 2e6, repetitions=1)[0]
        assert m.output_gap == pytest.approx(1500 * 8 / 2e6, rel=1e-9)

    def test_noisy_clocks_perturb_timestamps(self):
        channel = SimulatedFifoChannel(10e6, start_jitter=0.0)
        ideal = Prober(channel, ProbeSessionConfig(
            repetitions=1, ideal_clocks=True))
        noisy = Prober(channel, ProbeSessionConfig(
            repetitions=1, ideal_clocks=False))
        m_ideal = ideal.measure_train(5, 2e6)[0]
        m_noisy = noisy.measure_train(5, 2e6)[0]
        assert not np.allclose(m_ideal.recv_times, m_noisy.recv_times)

    def test_clock_noise_does_not_bias_long_trains(self):
        """~10 us timestamp errors are negligible against ms gaps."""
        channel = SimulatedFifoChannel(10e6, start_jitter=0.0)
        noisy = Prober(channel, ProbeSessionConfig(
            repetitions=5, ideal_clocks=False))
        rate = noisy.dispersion_rate(50, 2e6)
        assert rate == pytest.approx(2e6, rel=0.01)


class TestEstimates:
    def test_packet_pair_on_fifo_is_capacity(self, fifo_prober):
        assert fifo_prober.packet_pair_estimate() == pytest.approx(
            10e6, rel=0.01)

    def test_dispersion_rate_at_low_rate_is_input(self, wlan_prober):
        rate = wlan_prober.dispersion_rate(20, 1e6)
        assert rate == pytest.approx(1e6, rel=0.1)

    def test_rate_scan_returns_curve(self, wlan_prober):
        curve = wlan_prober.rate_scan([1e6, 2e6, 6e6], n=10,
                                      repetitions=5)
        assert len(curve.input_rates) == 3
        assert curve.trains_per_rate == 5

    def test_achievable_throughput_plausible(self, wlan_prober):
        b = wlan_prober.achievable_throughput(
            [1e6, 2e6, 3e6, 4e6, 5e6], n=40, repetitions=6,
            tolerance=0.1)
        # Cross at 2 Mb/s: B between the fair share and C - cross.
        assert 2.5e6 < b < 5.5e6

    def test_mser_corrected_rate_runs(self, wlan_prober):
        rate = wlan_prober.mser_corrected_rate(20, 6e6, repetitions=6)
        assert rate > 0


class TestSessionConfig:
    def test_defaults(self):
        config = ProbeSessionConfig()
        assert config.size_bytes == 1500
        assert config.repetitions == 40

    def test_prober_uses_size(self, fifo_prober):
        fifo_prober.config.size_bytes = 576
        m = fifo_prober.measure_train(3, 1e6, repetitions=1)[0]
        assert m.size_bytes == 576


class TestSequenceAndChirpSupport:
    def test_measure_sequence_requires_capable_channel(self, fifo_prober):
        with pytest.raises(TypeError):
            fifo_prober.measure_sequence(5, 2e6, m=3)

    def test_measure_sequence_on_wlan(self, wlan_prober):
        measurements = wlan_prober.measure_sequence(
            5, 2e6, m=4, mean_spacing=0.05, guard=0.02, seed=2)
        assert len(measurements) == 4
        assert all(m.n == 5 for m in measurements)

    def test_chirps_through_a_path(self):
        from repro.core.chirp import ChirpTrain, chirp_estimate
        from repro.path import NetworkPath, SimulatedPathChannel, WiredHop
        path = NetworkPath([WiredHop(10e6)])
        prober = Prober(SimulatedPathChannel(path),
                        ProbeSessionConfig(repetitions=5,
                                           ideal_clocks=True))
        chirp = ChirpTrain.covering_rates(2e6, 20e6, spread_factor=1.4)
        measurements = prober.measure_chirps(chirp, seed=3)
        estimate = chirp_estimate(measurements, chirp)
        # An empty 10 Mb/s link queues once the chirp sweeps past C.
        assert 6e6 < estimate < 16e6
