"""Tests for the KS machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.stats.ks import (
    empirical_cdf,
    interpolated_cdf,
    ks_2samp_interpolated,
    ks_distance,
    ks_threshold,
)


class TestEmpiricalCdf:
    def test_step_values(self):
        cdf = empirical_cdf(np.array([1.0, 2.0, 3.0]))
        assert cdf(np.array([0.5]))[0] == 0.0
        assert cdf(np.array([1.0]))[0] == pytest.approx(1 / 3)
        assert cdf(np.array([2.5]))[0] == pytest.approx(2 / 3)
        assert cdf(np.array([3.0]))[0] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    def test_right_continuity(self):
        cdf = empirical_cdf(np.array([1.0]))
        assert cdf(np.array([1.0]))[0] == 1.0
        assert cdf(np.array([1.0 - 1e-12]))[0] == 0.0


class TestInterpolatedCdf:
    def test_monotone(self):
        sample = np.array([1.0, 2.0, 5.0, 7.0])
        cdf = interpolated_cdf(sample)
        grid = np.linspace(0, 10, 100)
        values = cdf(grid)
        assert np.all(np.diff(values) >= 0)

    def test_clamped_to_unit_interval(self):
        cdf = interpolated_cdf(np.array([1.0, 2.0]))
        assert cdf(np.array([-10.0]))[0] == 0.0
        assert cdf(np.array([10.0]))[0] == 1.0

    def test_linear_between_points(self):
        cdf = interpolated_cdf(np.array([0.0, 1.0]))
        assert cdf(np.array([0.5]))[0] == pytest.approx(0.75)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            interpolated_cdf(np.array([]))


class TestKsDistance:
    def test_identical_samples_zero(self):
        sample = np.array([1.0, 2.0, 3.0])
        assert ks_distance(sample, sample) == 0.0

    def test_disjoint_samples_one(self):
        assert ks_distance([1.0, 2.0], [10.0, 11.0]) == 1.0

    def test_matches_scipy(self, rng):
        a = rng.normal(0, 1, 200)
        b = rng.normal(0.3, 1, 300)
        ours = ks_distance(a, b)
        scipy_stat = sps.ks_2samp(a, b, method="asymp").statistic
        assert ours == pytest.approx(scipy_stat, abs=1e-12)

    def test_symmetry(self, rng):
        a = rng.normal(0, 1, 50)
        b = rng.normal(1, 2, 80)
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1.0])

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=1, max_size=50),
           st.lists(st.floats(min_value=-100, max_value=100),
                    min_size=1, max_size=50))
    def test_bounded_in_unit_interval(self, a, b):
        d = ks_distance(np.array(a), np.array(b))
        assert 0.0 <= d <= 1.0


class TestKsThreshold:
    def test_formula_95(self):
        # c(0.05) = 1.3581...
        expected = np.sqrt(-np.log(0.025) / 2) * np.sqrt(2 / 100)
        assert ks_threshold(100, 100) == pytest.approx(expected)

    def test_smaller_alpha_larger_threshold(self):
        assert ks_threshold(100, 100, 0.01) > ks_threshold(100, 100, 0.05)

    def test_more_samples_smaller_threshold(self):
        assert ks_threshold(1000, 1000) < ks_threshold(100, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_threshold(0, 10)
        with pytest.raises(ValueError):
            ks_threshold(10, 10, alpha=1.5)

    def test_consistent_with_scipy_pvalue(self, rng):
        """Samples from the same distribution should rarely exceed the
        95% threshold."""
        rejections = 0
        trials = 200
        for _ in range(trials):
            a = rng.exponential(1.0, 80)
            b = rng.exponential(1.0, 80)
            if ks_distance(a, b) > ks_threshold(80, 80):
                rejections += 1
        assert rejections / trials < 0.12


class TestKs2SampInterpolated:
    def test_same_distribution_accepted(self, rng):
        reference = rng.normal(0, 1, 2000)
        sample = rng.normal(0, 1, 100)
        result = ks_2samp_interpolated(sample, reference)
        assert result.same_distribution

    def test_shifted_distribution_rejected(self, rng):
        reference = rng.normal(0, 1, 2000)
        sample = rng.normal(2.0, 1, 100)
        result = ks_2samp_interpolated(sample, reference)
        assert not result.same_distribution
        assert result.statistic > 0.5

    def test_statistic_bounded(self, rng):
        result = ks_2samp_interpolated(rng.uniform(0, 1, 50),
                                       rng.uniform(0, 1, 500))
        assert 0.0 <= result.statistic <= 1.0

    def test_result_fields(self, rng):
        result = ks_2samp_interpolated(rng.uniform(0, 1, 50),
                                       rng.uniform(0, 1, 500), alpha=0.01)
        assert result.n == 50
        assert result.m == 500
        assert result.alpha == 0.01

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_2samp_interpolated(np.array([]), np.array([1.0]))

    def test_atomic_distribution_floor_artifact(self):
        """Documented caveat: against an atomic reference, the
        interpolated statistic has a floor of ~half the atom mass even
        for a sample drawn from the same distribution."""
        atom = np.full(500, 1.0)
        spread = np.linspace(2.0, 3.0, 500)
        reference = np.concatenate([atom, spread])
        sample = np.concatenate([np.full(50, 1.0),
                                 np.linspace(2.0, 3.0, 50)])
        interp = ks_2samp_interpolated(sample, reference).statistic
        plain = ks_distance(sample, reference)
        assert interp > 0.2      # the artifact
        assert plain < 0.05      # the plain statistic is honest
