"""Tests for the TOPP regression estimator."""

import numpy as np
import pytest

from repro.analytic.rate_response import (
    complete_rate_response,
    fifo_rate_response,
)
from repro.core.estimators import RateResponseCurve
from repro.core.topp import topp_estimate, topp_from_prober


def curve_from_model(rates, outputs):
    return RateResponseCurve(np.asarray(rates, dtype=float),
                             np.asarray(outputs, dtype=float),
                             size_bytes=1500, trains_per_rate=1)


class TestToppOnModels:
    def test_recovers_fifo_parameters_exactly(self):
        capacity, available = 10e6, 4e6
        rates = np.arange(1e6, 20.01e6, 1e6)
        curve = curve_from_model(
            rates, fifo_rate_response(rates, capacity, available))
        estimate = topp_estimate(curve)
        assert estimate.capacity_bps == pytest.approx(capacity, rel=1e-3)
        assert estimate.available_bps == pytest.approx(available, rel=1e-2)

    def test_on_csma_recovers_fair_share_and_b(self):
        """The module-docstring claim: TOPP's 'C' is Bf, its 'A' is B."""
        fair_share, u_fifo = 3.3e6, 0.3
        rates = np.arange(0.5e6, 12.01e6, 0.5e6)
        curve = curve_from_model(
            rates, complete_rate_response(rates, fair_share, u_fifo))
        estimate = topp_estimate(curve)
        assert estimate.capacity_bps == pytest.approx(fair_share, rel=0.02)
        assert estimate.available_bps == pytest.approx(
            fair_share * (1 - u_fifo), rel=0.05)
        assert estimate.utilization == pytest.approx(u_fifo, abs=0.03)

    def test_segment_selection(self):
        capacity, available = 10e6, 4e6
        rates = np.arange(1e6, 20.01e6, 1e6)
        curve = curve_from_model(
            rates, fifo_rate_response(rates, capacity, available))
        estimate = topp_estimate(curve)
        # Segment starts strictly after the undisturbed region.
        assert rates[estimate.segment_start] > available

    def test_needs_enough_loaded_points(self):
        rates = np.array([1e6, 2e6, 3e6])
        curve = curve_from_model(rates, rates)  # pure diagonal
        with pytest.raises(ValueError):
            topp_estimate(curve)

    def test_rejects_unsorted_rates(self):
        curve = curve_from_model([2e6, 1e6], [2e6, 1e6])
        with pytest.raises(ValueError):
            topp_estimate(curve)

    def test_rejects_nonpositive_outputs(self):
        curve = curve_from_model([1e6, 2e6], [1e6, 0.0])
        with pytest.raises(ValueError):
            topp_estimate(curve)


class TestToppOnChannels:
    def test_fifo_measurement(self):
        from repro.testbed import (Prober, ProbeSessionConfig,
                                   SimulatedFifoChannel)
        from repro.traffic import PoissonGenerator
        channel = SimulatedFifoChannel(
            10e6, cross_generator=PoissonGenerator(4e6, 1500))
        prober = Prober(channel, ProbeSessionConfig(repetitions=8,
                                                    ideal_clocks=True))
        estimate = topp_from_prober(
            prober, np.arange(6e6, 16.01e6, 1e6), n=200, seed=1)
        assert estimate.capacity_bps == pytest.approx(10e6, rel=0.1)
        assert estimate.available_bps == pytest.approx(6e6, rel=0.15)

    def test_wlan_measurement_returns_fair_share(self):
        from repro.analytic.bianchi import BianchiModel
        from repro.testbed import (Prober, ProbeSessionConfig,
                                   SimulatedWlanChannel)
        from repro.traffic import PoissonGenerator
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4.5e6, 1500))], warmup=0.15)
        prober = Prober(channel, ProbeSessionConfig(repetitions=6,
                                                    ideal_clocks=True))
        estimate = topp_from_prober(
            prober, np.arange(3.5e6, 10.01e6, 0.75e6), n=150, seed=2)
        bianchi = BianchiModel()
        # TOPP's "capacity" lands on the fair share, nowhere near C.
        assert estimate.capacity_bps == pytest.approx(
            bianchi.fair_share(2), rel=0.15)
        assert estimate.capacity_bps < 0.75 * bianchi.capacity()
