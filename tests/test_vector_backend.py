"""Tests for the vectorized DCF backend (repro.sim.vector).

The load-bearing guarantees:

* the kernel is deterministic run-to-run and uses the executor's
  seed-derivation scheme;
* its access-delay and throughput distributions are statistically
  equivalent (KS) to the event engine's on the same saturated
  scenario;
* the runtime layer routes batches to it when (and only when) the
  ``vector`` backend is selected.
"""

import numpy as np
import pytest

from helpers import seed_params
from repro.analysis.saturation import dcf_saturation_study, simulate_saturated
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.runtime import executor
from repro.sim.vector import simulate_saturated_batch


class TestKernelBasics:
    def test_shapes_and_counts(self):
        batch = simulate_saturated_batch(4, 7, 11, seed=5)
        assert batch.access_delays.shape == (11, 4, 7)
        assert not np.isnan(batch.access_delays).any()
        assert np.all(batch.successes == 4 * 7)
        assert np.all(batch.durations > 0)

    def test_deterministic_run_to_run(self):
        one = simulate_saturated_batch(5, 10, 20, seed=9)
        two = simulate_saturated_batch(5, 10, 20, seed=9)
        assert np.array_equal(one.access_delays, two.access_delays)
        assert np.array_equal(one.durations, two.durations)
        assert np.array_equal(one.collisions, two.collisions)

    def test_seed_changes_results(self):
        one = simulate_saturated_batch(5, 10, 20, seed=9)
        other = simulate_saturated_batch(5, 10, 20, seed=10)
        assert not np.array_equal(one.access_delays, other.access_delays)

    def test_repetition_streams_independent_of_batch_size(self):
        """Repetition r sees the same universe in any batch that
        contains it — the property executor sharding relies on."""
        small = simulate_saturated_batch(3, 8, 4, seed=2)
        large = simulate_saturated_batch(3, 8, 16, seed=2)
        assert np.array_equal(small.access_delays,
                              large.access_delays[:4])
        assert np.array_equal(small.durations, large.durations[:4])

    def test_seed_scheme_matches_executor(self):
        """The kernel's inline derivation must equal derive_seeds."""
        expected = executor.derive_seeds(123, 8)
        state = np.random.SeedSequence(123).generate_state(8)
        assert [int(s) for s in state] == expected

    def test_single_station_first_packet_is_immediate(self):
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        batch = simulate_saturated_batch(1, 5, 6, seed=0)
        # Immediate access: the first packet pays exactly one DATA airtime.
        assert np.allclose(batch.access_delays[:, 0, 0],
                           airtime.data_airtime(1500))
        assert np.all(batch.collisions == 0)

    def test_immediate_access_first_round_collides(self):
        """With >= 2 saturated stations the 802.11 immediate-access rule
        makes the very first round an all-station collision."""
        batch = simulate_saturated_batch(4, 3, 10, seed=1)
        assert np.all(batch.collisions >= 1)

    def test_immediate_access_disabled_draws_first_backoff(self):
        phy = PhyParams.dot11b()
        airtime = AirtimeModel(phy)
        batch = simulate_saturated_batch(1, 4, 50, seed=3,
                                         immediate_access=False)
        first = batch.access_delays[:, 0, 0]
        # Some repetitions draw a non-zero first counter...
        assert np.any(first > airtime.data_airtime(1500) + 1e-9)
        # ...and none beats the bare DATA airtime.
        assert np.all(first >= airtime.data_airtime(1500) - 1e-12)

    def test_throughput_near_capacity_for_single_station(self):
        from repro.analytic.bianchi import BianchiModel
        batch = simulate_saturated_batch(1, 40, 30, seed=0)
        capacity = BianchiModel().capacity()
        assert np.allclose(batch.throughput_bps().mean(), capacity,
                           rtol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_saturated_batch(0, 5, 5)
        with pytest.raises(ValueError):
            simulate_saturated_batch(2, 0, 5)
        with pytest.raises(ValueError):
            simulate_saturated_batch(2, 5, 0)


class TestEventEquivalence:
    """KS equivalence between the two backends on one scenario.

    Seeds are fixed, so these are deterministic regressions, not flaky
    statistical tests: the KS distances were measured well under the
    alpha=0.01 thresholds when the kernel was written, and a protocol
    change in either backend pushes them over.  The extra master seeds
    (``-m seed_sweep``) guard against a seed-lottery pass.
    """

    S, P, R = 3, 25, 40

    @pytest.fixture(scope="class", params=seed_params(0, 7, 23))
    def batches(self, request):
        seed = request.param
        event = simulate_saturated(self.S, self.P, self.R, seed=seed,
                                   backend="event")
        vector = simulate_saturated(self.S, self.P, self.R, seed=seed,
                                    backend="vector")
        return event, vector

    def test_access_delay_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event.pooled_access_delays(),
                  vector.pooled_access_delays())

    def test_first_packet_delay_distributions_match(self, batches,
                                                    ks_assert):
        """The transient-critical index: the very first packet."""
        event, vector = batches
        ks_assert(event.access_delays[:, :, 0],
                  vector.access_delays[:, :, 0])

    def test_throughput_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event.throughput_bps(), vector.throughput_bps())

    def test_mean_metrics_close(self, batches):
        event, vector = batches
        assert event.pooled_access_delays().mean() == pytest.approx(
            vector.pooled_access_delays().mean(), rel=0.05)
        assert event.throughput_bps().mean() == pytest.approx(
            vector.throughput_bps().mean(), rel=0.02)
        assert event.collision_rate().mean() == pytest.approx(
            vector.collision_rate().mean(), abs=0.04)


class TestBatchRouting:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            executor.run_batch(lambda s: s, 4, 0, backend="quantum")

    def test_vector_requires_kernel(self):
        with pytest.raises(ValueError, match="no vector kernel"):
            executor.run_batch(lambda s: s, 4, 0, backend="vector")

    def test_event_maps_derived_seeds(self):
        out = executor.run_batch(lambda s: s, 5, 7, backend="event")
        assert out == executor.derive_seeds(7, 5)

    def test_vector_gets_batch_seed(self):
        seen = []
        executor.run_batch(lambda s: seen.append(s), 5, 7, backend="vector",
                           vector_batch=lambda s: seen.append(s))
        assert seen == [7]

    def test_derive_seeds_validation(self):
        with pytest.raises(ValueError):
            executor.derive_seeds(0, 0)


class TestSaturationStudy:
    def test_runner_passes_checks_on_both_backends(self):
        for backend in ("event", "vector"):
            result = dcf_saturation_study(
                station_counts=(1, 2, 5), packets_per_station=30,
                repetitions=20, seed=0, backend=backend)
            assert result.all_checks_pass, (backend, result.failed_checks)
            assert result.meta["backend"] == backend

    def test_jobs_do_not_change_event_backend_result(self):
        serial = simulate_saturated(2, 10, 8, seed=3, backend="event")
        with executor.parallel_jobs(4):
            parallel = simulate_saturated(2, 10, 8, seed=3, backend="event")
        assert np.array_equal(serial.access_delays, parallel.access_delays)
        assert np.array_equal(serial.durations, parallel.durations)

    def test_rejects_bad_station_counts(self):
        with pytest.raises(ValueError):
            dcf_saturation_study(station_counts=(0, 2), repetitions=2)


class TestRtsSaturatedEquivalence:
    """The saturated kernel's RTS/CTS mode vs. the event engine.

    Same discipline as TestEventEquivalence (fixed seeds, alpha=0.01),
    with every frame RTS-protected on both backends.
    """

    S, P, R = 3, 15, 40

    @pytest.fixture(scope="class", params=seed_params(0, 11, 29))
    def batches(self, request):
        from repro.mac.scenario import (
            WlanScenario,
            saturated_station_specs,
        )
        from repro.runtime.executor import derive_seeds

        seed = request.param
        delays = []
        scenario = WlanScenario(rts_threshold=0)
        for rep_seed in derive_seeds(seed, self.R):
            specs = saturated_station_specs(self.S, self.P)
            result = scenario.run(specs, horizon=1.0, seed=rep_seed)
            delays.append(np.stack([
                result.station(f"sat{i}").access_delays()
                for i in range(self.S)]))
        event = np.stack(delays)
        vector = simulate_saturated_batch(
            self.S, self.P, self.R, seed=seed, rts_threshold=0)
        return event, vector

    def test_access_delay_distributions_match(self, batches, ks_assert):
        event, vector = batches
        ks_assert(event, vector.pooled_access_delays())

    def test_rts_inflates_success_cost_on_both(self, batches):
        """Every RTS-protected delay includes the handshake preamble,
        so the minimum delay exceeds the bare DATA airtime on either
        backend."""
        from repro.mac.frames import AirtimeModel
        from repro.mac.params import PhyParams
        airtime = AirtimeModel(PhyParams.dot11b())
        floor = (airtime.rts_preamble_duration()
                 + airtime.data_airtime(1500))
        event, vector = batches
        assert float(event.min()) >= floor - 1e-9
        assert float(vector.pooled_access_delays().min()) >= floor - 1e-9

    def test_simulate_saturated_threads_rts_through_dispatch(self):
        """The dispatch-level entry accepts rts_threshold on both
        backends, so the kernel's rts_cts capability claim is
        reachable end to end."""
        from repro.analysis.saturation import simulate_saturated
        from repro.mac.frames import AirtimeModel
        from repro.mac.params import PhyParams
        floor = (AirtimeModel(PhyParams.dot11b()).rts_preamble_duration()
                 + AirtimeModel(PhyParams.dot11b()).data_airtime(1500))
        for backend in ("event", "vector"):
            batch = simulate_saturated(2, 4, 3, seed=1, rts_threshold=0,
                                       backend=backend)
            assert float(batch.pooled_access_delays().min()) \
                >= floor - 1e-9
