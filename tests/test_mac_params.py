"""Tests for PHY/MAC parameters and the airtime model."""

import pytest

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams


class TestPhyParams:
    def test_dot11b_defaults(self):
        phy = PhyParams.dot11b()
        assert phy.slot_time == pytest.approx(20e-6)
        assert phy.sifs == pytest.approx(10e-6)
        assert phy.data_rate == 11e6
        assert phy.cw_min == 31
        assert phy.cw_max == 1023

    def test_difs(self):
        phy = PhyParams.dot11b()
        assert phy.difs == pytest.approx(50e-6)

    def test_eifs_exceeds_difs(self):
        phy = PhyParams.dot11b()
        assert phy.eifs > phy.difs

    def test_max_backoff_stage_dot11b(self):
        # 31 -> 63 -> 127 -> 255 -> 511 -> 1023: five doublings.
        assert PhyParams.dot11b().max_backoff_stage == 5

    def test_max_backoff_stage_dot11g(self):
        # 15 -> ... -> 1023: six doublings.
        assert PhyParams.dot11g().max_backoff_stage == 6

    def test_short_preamble_smaller_overhead(self):
        assert (PhyParams.dot11b_short_preamble().plcp_overhead
                < PhyParams.dot11b().plcp_overhead)

    def test_dot11g_short_slot(self):
        assert PhyParams.dot11g().slot_time == pytest.approx(9e-6)

    @pytest.mark.parametrize("field,value", [
        ("slot_time", 0.0),
        ("sifs", -1e-6),
        ("data_rate", 0.0),
        ("basic_rate", -1.0),
        ("plcp_overhead", -1e-6),
        ("cw_min", -1),
        ("ack_bytes", 0),
        ("difs_slots", 0),
    ])
    def test_validation(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            PhyParams(**kwargs)

    def test_cw_max_below_cw_min_rejected(self):
        with pytest.raises(ValueError):
            PhyParams(cw_min=31, cw_max=15)

    def test_frozen(self):
        phy = PhyParams.dot11b()
        with pytest.raises(AttributeError):
            phy.slot_time = 1.0


class TestAirtimeModel:
    @pytest.fixture
    def airtime(self):
        return AirtimeModel(PhyParams.dot11b())

    def test_data_airtime_1500(self, airtime):
        # 192 us preamble + (1500 + 36) * 8 / 11e6.
        expected = 192e-6 + 1536 * 8 / 11e6
        assert airtime.data_airtime(1500) == pytest.approx(expected)

    def test_data_airtime_increases_with_size(self, airtime):
        assert airtime.data_airtime(1500) > airtime.data_airtime(40)

    def test_ack_airtime(self, airtime):
        expected = 192e-6 + 14 * 8 / 2e6
        assert airtime.ack_airtime() == pytest.approx(expected)

    def test_success_duration_composition(self, airtime):
        expected = (airtime.data_airtime(1000) + 10e-6
                    + airtime.ack_airtime())
        assert airtime.success_duration(1000) == pytest.approx(expected)

    def test_collision_duration_uses_longest(self, airtime):
        collision = airtime.collision_duration([40, 1500])
        assert collision == pytest.approx(airtime.success_duration(1500))

    def test_collision_needs_two_frames(self, airtime):
        with pytest.raises(ValueError):
            airtime.collision_duration([1500])

    def test_rejects_bad_size(self, airtime):
        with pytest.raises(ValueError):
            airtime.data_airtime(0)

    def test_min_service_time_is_data_airtime(self, airtime):
        assert airtime.min_service_time(1500) == airtime.data_airtime(1500)

    def test_link_capacity_matches_paper_ballpark(self, airtime):
        # The paper's testbed measures C ~ 6.5 Mb/s at 11 Mb/s PHY.
        capacity = airtime.link_capacity(1500)
        assert 5.8e6 < capacity < 6.8e6

    def test_capacity_below_phy_rate(self, airtime):
        assert airtime.link_capacity(1500) < 11e6

    def test_capacity_increases_with_packet_size(self, airtime):
        assert airtime.link_capacity(1500) > airtime.link_capacity(100)

    def test_saturation_cycle_composition(self, airtime):
        phy = airtime.phy
        expected = (phy.difs + phy.cw_min / 2 * phy.slot_time
                    + airtime.success_duration(1500))
        assert airtime.saturation_cycle(1500) == pytest.approx(expected)

    def test_short_preamble_higher_capacity(self):
        long_pre = AirtimeModel(PhyParams.dot11b()).link_capacity(1500)
        short_pre = AirtimeModel(
            PhyParams.dot11b_short_preamble()).link_capacity(1500)
        assert short_pre > long_pre

    def test_dot11g_higher_capacity(self):
        b = AirtimeModel(PhyParams.dot11b()).link_capacity(1500)
        g = AirtimeModel(PhyParams.dot11g()).link_capacity(1500)
        assert g > 3 * b
