"""Streaming (chunked) batch execution and the BatchRequest API.

The PR-7 pins: a chunked run must reproduce the dense run *bit for
bit* at every chunk size — same per-repetition seeds (contiguous
slices of the dense derivation), row-wise folds, no re-reduction in
floating point — for all three kernel families (probe-train,
saturated DCF, Lindley/FIFO).  The reducers stream per-repetition
reduced quantities at ``O(chunk)`` peak memory; everything except the
(deliberately random) reservoir sample stays bit-identical.  The
``BatchRequest`` migration pins cover the deprecated dual-optional
``run_batch`` shim, the ambient ``chunked_reps`` scope and its
environment variable, and the caller-kernel resolution that replaced
the executor's old dispatcher bypass.
"""

import warnings

import numpy as np
import pytest

from helpers import seed_params
from repro.backends import (
    BackendUnavailableError,
    BatchRequest,
    CALLER_KERNEL,
    dispatch,
)
from repro.core.batch import (
    ChunkReducer,
    ConcatReducer,
    OutputGapReducer,
    RepetitionBatch,
    ReservoirSampleReducer,
    ThroughputReducer,
    chunk_bounds,
    iter_chunks,
    resolve_rep_seeds,
)
from repro.core.dispersion import TrainBatch, output_gaps_batch
from repro.runtime import executor
from repro.runtime.executor import (
    active_chunk_reps,
    chunked_reps,
    derive_seeds,
    run_batch,
)
from repro.sim.probe_vector import (
    PoissonCrossSpec,
    QueueTraceBatch,
    simulate_probe_train_batch,
    simulate_steady_state_batch,
)
from repro.sim.vector import simulate_saturated_batch
from repro.testbed.channel import SimulatedFifoChannel, SimulatedWlanChannel
from repro.traffic.generators import OnOffGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain

L = 1500
REPS = 13
#: The ISSUE's chunk-size grid: singleton chunks, a ragged tail
#: (13 % 7 != 0), exactly dense, and past-dense (normalised to dense).
CHUNKS = (1, 7, REPS, REPS + 3)


def _probe_batches_equal(a, b):
    """Bit-exact equality of two ProbeBatchResult-shaped batches."""
    assert np.array_equal(a.send_times, b.send_times)
    assert np.array_equal(a.recv_times, b.recv_times)
    assert np.array_equal(a.access_delays, b.access_delays,
                          equal_nan=True)
    assert a.size_bytes == b.size_bytes


class TestChunkPrimitives:
    def test_chunk_bounds_cover_contiguously(self):
        assert chunk_bounds(13, 7) == [(0, 7), (7, 13)]
        assert chunk_bounds(6, 2) == [(0, 2), (2, 4), (4, 6)]
        assert chunk_bounds(5, 9) == [(0, 5)]

    def test_chunk_bounds_validate(self):
        with pytest.raises(ValueError):
            chunk_bounds(0, 3)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)

    def test_resolve_rep_seeds_matches_derive_seeds(self):
        assert list(resolve_rep_seeds(42, 9)) == derive_seeds(42, 9)

    def test_resolve_rep_seeds_validates(self):
        with pytest.raises(ValueError):
            resolve_rep_seeds(0, 0)

    def test_slices_are_batch_size_independent(self):
        """The property the whole design rests on: the dense seed
        array's slice [lo:hi] is what a chunk must replay."""
        dense = resolve_rep_seeds(7, 12)
        assert np.array_equal(dense[:5], resolve_rep_seeds(7, 12)[:5])

    def test_iter_chunks_groups_with_short_tail(self):
        assert list(iter_chunks(range(7), 3)) == [[0, 1, 2], [3, 4, 5],
                                                  [6]]

    def test_iter_chunks_validates(self):
        with pytest.raises(ValueError):
            list(iter_chunks([1], 0))


class TestRepetitionBatchProtocol:
    """All five dense batch classes conform, structurally."""

    @pytest.fixture(scope="class")
    def train_batch(self):
        send = np.cumsum(np.ones((4, 5)), axis=1)
        return TrainBatch(send_times=send, recv_times=send + 0.25,
                          size_bytes=L)

    @pytest.fixture(scope="class")
    def probe_batch(self):
        return simulate_probe_train_batch(
            5, 0.003, 6, size_bytes=L,
            cross=[PoissonCrossSpec(200.0, L)], seed=3,
            track_queues=True)

    @pytest.fixture(scope="class")
    def steady_batch(self):
        return simulate_steady_state_batch(
            2e6, 4, size_bytes=L, duration=0.2, warmup=0.05, seed=5)

    @pytest.fixture(scope="class")
    def saturated_batch(self):
        return simulate_saturated_batch(3, 8, 5, seed=2, retry_limit=2)

    def test_all_batches_conform(self, train_batch, probe_batch,
                                 steady_batch, saturated_batch):
        for batch in (train_batch, probe_batch, steady_batch,
                      saturated_batch, probe_batch.queue_traces[0]):
            assert isinstance(batch, RepetitionBatch)
            assert batch.repetitions >= 1

    def test_per_rep_concat_round_trips_trains(self, train_batch):
        back = TrainBatch.concat(train_batch.per_rep())
        assert np.array_equal(back.send_times, train_batch.send_times)
        assert np.array_equal(back.recv_times, train_batch.recv_times)

    def test_per_rep_concat_round_trips_probe(self, probe_batch):
        parts = probe_batch.per_rep()
        assert all(p.repetitions == 1 for p in parts)
        back = type(probe_batch).concat(parts)
        _probe_batches_equal(back, probe_batch)
        assert len(back.queue_traces) == len(probe_batch.queue_traces)
        for a, b in zip(back.queue_traces, probe_batch.queue_traces):
            assert np.array_equal(a.departures, b.departures)

    def test_per_rep_concat_round_trips_steady(self, steady_batch):
        back = type(steady_batch).concat(steady_batch.per_rep())
        assert np.array_equal(back.probe_bits, steady_batch.probe_bits)
        assert np.array_equal(back.cross_bits, steady_batch.cross_bits)

    def test_per_rep_concat_round_trips_saturated(self, saturated_batch):
        back = type(saturated_batch).concat(saturated_batch.per_rep())
        assert np.array_equal(back.access_delays,
                              saturated_batch.access_delays,
                              equal_nan=True)
        assert np.array_equal(back.drops, saturated_batch.drops)
        assert np.array_equal(back.durations, saturated_batch.durations)

    def test_concat_rejects_mismatched_parts(self, train_batch,
                                             saturated_batch):
        other = TrainBatch(send_times=train_batch.send_times,
                           recv_times=train_batch.recv_times,
                           size_bytes=L + 100)
        with pytest.raises(ValueError, match="packet sizes"):
            TrainBatch.concat([train_batch, other])
        no_drops = simulate_saturated_batch(3, 8, 2, seed=2)
        with pytest.raises(ValueError, match="drop counters"):
            type(saturated_batch).concat([saturated_batch, no_drops])

    def test_concat_needs_parts(self):
        with pytest.raises(ValueError):
            TrainBatch.concat([])


class TestChunkedBitIdentity:
    """The tentpole guarantee, per kernel family and chunk size."""

    @pytest.fixture(scope="class")
    def wlan(self):
        return SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, L))], warmup=0.05)

    @pytest.fixture(scope="class")
    def fifo(self):
        return SimulatedFifoChannel(
            8e6, cross_generator=PoissonGenerator(3e6, L),
            start_jitter=0.0)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_probe_train_channel_chunks_bit_identical(self, wlan, chunk):
        train = ProbeTrain.at_rate(10, 5e6, L)
        dense = wlan.send_trains_dense(train, REPS, seed=11,
                                       backend="vector")
        with chunked_reps(chunk):
            chunked = wlan.send_trains_dense(train, REPS, seed=11,
                                             backend="vector")
        _probe_batches_equal(chunked, dense)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_lindley_channel_chunks_bit_identical(self, fifo, chunk):
        train = ProbeTrain.at_rate(12, 6e6, L)
        dense = fifo.send_trains_dense(train, REPS, seed=19,
                                       backend="vector")
        with chunked_reps(chunk):
            chunked = fifo.send_trains_dense(train, REPS, seed=19,
                                             backend="vector")
        _probe_batches_equal(chunked, dense)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_saturated_study_chunks_bit_identical(self, chunk):
        from repro.analysis.saturation import simulate_saturated
        dense = simulate_saturated(4, 15, REPS, seed=23, retry_limit=3,
                                   backend="vector")
        with chunked_reps(chunk):
            chunked = simulate_saturated(4, 15, REPS, seed=23,
                                         retry_limit=3,
                                         backend="vector")
        assert np.array_equal(chunked.access_delays, dense.access_delays,
                              equal_nan=True)
        assert np.array_equal(chunked.durations, dense.durations)
        assert np.array_equal(chunked.successes, dense.successes)
        assert np.array_equal(chunked.collisions, dense.collisions)
        assert np.array_equal(chunked.drops, dense.drops)

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_steady_state_chunks_bit_identical(self, chunk):
        from repro.analysis.steady_state import steady_state_samples
        dense = steady_state_samples(2e6, 3e6, repetitions=REPS,
                                     duration=0.2, warmup=0.05,
                                     seed=29, backend="vector")
        with chunked_reps(chunk):
            chunked = steady_state_samples(2e6, 3e6, repetitions=REPS,
                                           duration=0.2, warmup=0.05,
                                           seed=29, backend="vector")
        for flow in dense:
            assert np.array_equal(chunked[flow], dense[flow])

    def test_explicit_request_chunks_bit_identical(self):
        """chunk_reps on the request itself (the --chunk-reps path)."""
        def batch_task(seeds):
            return simulate_probe_train_batch(
                6, 0.0025, len(seeds), size_bytes=L,
                cross=[PoissonCrossSpec(250.0, L)], seeds=seeds)

        dense = run_batch(BatchRequest(repetitions=REPS, seed=31,
                                       batch_task=batch_task),
                          backend="vector")
        for chunk in CHUNKS:
            chunked = run_batch(
                BatchRequest(repetitions=REPS, seed=31,
                             batch_task=batch_task, chunk_reps=chunk),
                backend="vector")
            _probe_batches_equal(chunked, dense)

    def test_request_chunk_overrides_ambient_scope(self):
        seen = []

        def batch_task(seeds):
            seen.append(len(seeds))
            return simulate_probe_train_batch(
                4, 0.003, len(seeds), size_bytes=L, seeds=seeds)

        with chunked_reps(2):
            run_batch(BatchRequest(repetitions=9, seed=1,
                                   batch_task=batch_task, chunk_reps=4),
                      backend="vector")
        assert seen == [4, 4, 1]


@pytest.mark.slow
class TestChunkedOnOffKS:
    """Chunked ext-onoff kernel vs. the event engine (KS-pinned).

    All probes of a repetition share one on-off sample path, so the
    pin compares per-repetition statistics (see
    ``test_retry_onoff_equivalence``), with the vector side streamed
    through an uneven chunk size.
    """

    N, REPS = 20, 150

    @pytest.fixture(scope="class", params=seed_params(17))
    def pair(self, request):
        seed = request.param
        channel = SimulatedWlanChannel(
            [("burst", OnOffGenerator(6e6, 0.05, 0.05, L))], warmup=0.1)
        train = ProbeTrain.at_rate(self.N, 4e6, L)
        event = channel.send_trains_dense(train, self.REPS, seed=seed,
                                          backend="event")
        with chunked_reps(32):
            chunked = channel.send_trains_dense(train, self.REPS,
                                                seed=seed,
                                                backend="vector")
        return event, chunked

    def test_rep_mean_delay_distributions_match(self, pair, ks_assert):
        event, chunked = pair
        ks_assert(event.access_delays.mean(axis=1),
                  chunked.access_delays.mean(axis=1))

    def test_fixed_index_delay_distributions_match(self, pair,
                                                   ks_assert):
        event, chunked = pair
        for idx in (0, 10):
            ks_assert(event.access_delays[:, idx],
                      chunked.access_delays[:, idx])

    def test_chunked_equals_dense_vector(self, pair):
        """And the streamed run is still bit-identical to dense."""
        _, chunked = pair
        channel = SimulatedWlanChannel(
            [("burst", OnOffGenerator(6e6, 0.05, 0.05, L))], warmup=0.1)
        dense = channel.send_trains_dense(
            ProbeTrain.at_rate(self.N, 4e6, L), self.REPS, seed=17,
            backend="vector")
        _probe_batches_equal(chunked, dense)


class TestReducers:
    def _request(self, reducer, chunk, reps=REPS, seed=37):
        def batch_task(seeds):
            return simulate_probe_train_batch(
                6, 0.0025, len(seeds), size_bytes=L,
                cross=[PoissonCrossSpec(300.0, L)], seeds=seeds)

        return BatchRequest(repetitions=reps, seed=seed,
                            batch_task=batch_task, chunk_reps=chunk,
                            reducer=reducer)

    def test_base_reducer_is_abstract(self):
        reducer = ChunkReducer()
        with pytest.raises(NotImplementedError):
            reducer.update(None, 0, 1)
        with pytest.raises(NotImplementedError):
            reducer.finalize()

    def test_concat_reducer_passes_single_chunk_through(self):
        reducer = ConcatReducer()
        sentinel = object()
        reducer.update(sentinel, 0, 5)
        assert reducer.finalize() is sentinel

    def test_concat_reducer_rejects_empty(self):
        with pytest.raises(ValueError):
            ConcatReducer().finalize()
        with pytest.raises(ValueError):
            OutputGapReducer().finalize()
        with pytest.raises(ValueError):
            ThroughputReducer().finalize()

    @pytest.mark.parametrize("chunk", CHUNKS)
    def test_output_gap_reducer_bit_identical(self, chunk):
        dense = run_batch(self._request(None, None), backend="vector")
        gaps = run_batch(self._request(OutputGapReducer, chunk),
                         backend="vector")
        assert np.array_equal(gaps, output_gaps_batch(dense.recv_times))

    @pytest.mark.parametrize("chunk", (1, 5, REPS))
    def test_throughput_reducer_bit_identical(self, chunk):
        def batch_task(seeds):
            return simulate_steady_state_batch(
                2e6, len(seeds), size_bytes=L, duration=0.2,
                warmup=0.05, seeds=seeds, track_queues=True)

        dense = run_batch(BatchRequest(repetitions=REPS, seed=41,
                                       batch_task=batch_task),
                          backend="vector")
        slim = run_batch(BatchRequest(repetitions=REPS, seed=41,
                                      batch_task=batch_task,
                                      chunk_reps=chunk,
                                      reducer=ThroughputReducer),
                         backend="vector")
        assert slim.queue_traces is None  # the memory it saves
        assert dense.queue_traces is not None
        assert np.array_equal(slim.probe_throughput_bps(),
                              dense.probe_throughput_bps())
        assert np.array_equal(slim.cross_throughput_bps(),
                              dense.cross_throughput_bps())

    def test_reservoir_is_uniform_subset_of_stream(self):
        dense = run_batch(self._request(None, None), backend="vector")
        population = dense.access_delays.ravel()
        sample = run_batch(
            self._request(lambda: ReservoirSampleReducer(20, seed=5),
                          4),
            backend="vector")
        assert len(sample) == 20
        assert np.isin(sample, population).all()

    def test_reservoir_keeps_everything_when_k_covers_stream(self):
        dense = run_batch(self._request(None, None), backend="vector")
        sample = run_batch(
            self._request(lambda: ReservoirSampleReducer(10 ** 6), 4),
            backend="vector")
        assert np.array_equal(np.sort(sample),
                              np.sort(dense.access_delays.ravel()))

    def test_reservoir_deterministic_for_fixed_seed(self):
        first = run_batch(
            self._request(lambda: ReservoirSampleReducer(15, seed=9),
                          5),
            backend="vector")
        again = run_batch(
            self._request(lambda: ReservoirSampleReducer(15, seed=9),
                          5),
            backend="vector")
        assert np.array_equal(first, again)

    def test_reservoir_excludes_non_finite(self):
        reducer = ReservoirSampleReducer(
            8, values=lambda batch: batch)
        reducer.update(np.array([1.0, np.nan, 2.0, np.inf]), 0, 4)
        assert np.array_equal(np.sort(reducer.finalize()),
                              [1.0, 2.0])

    def test_reservoir_validates_k(self):
        with pytest.raises(ValueError):
            ReservoirSampleReducer(0)


class TestChunkScope:
    """The ambient chunked_reps scope and its environment variable."""

    def test_default_is_dense(self):
        assert active_chunk_reps() is None

    def test_scope_nests_and_restores(self):
        with chunked_reps(3):
            assert active_chunk_reps() == 3
            with chunked_reps(2):
                assert active_chunk_reps() == 2
            assert active_chunk_reps() == 3
        assert active_chunk_reps() is None

    def test_scope_none_forces_dense_over_env(self, monkeypatch):
        monkeypatch.setenv(executor.CHUNK_ENV, "4")
        assert active_chunk_reps() == 4
        with chunked_reps(None):
            assert active_chunk_reps() is None
        assert active_chunk_reps() == 4

    def test_invalid_env_warns_and_runs_dense(self, monkeypatch):
        for raw in ("zero", "0", "-3"):
            monkeypatch.setenv(executor.CHUNK_ENV, raw)
            with pytest.warns(UserWarning, match="ignoring invalid"):
                assert active_chunk_reps() is None

    def test_scope_validates(self):
        with pytest.raises(ValueError):
            with chunked_reps(0):
                pass

    def test_request_resolution_prefers_explicit(self):
        request = BatchRequest(repetitions=10, seed=0, chunk_reps=4)
        with chunked_reps(2):
            assert request.resolved_chunk_reps() == 4
            assert request.with_chunk_reps(None).resolved_chunk_reps() \
                == 2
        assert request.with_chunk_reps(None).resolved_chunk_reps() \
            is None

    def test_chunk_at_or_past_batch_is_dense(self):
        request = BatchRequest(repetitions=10, seed=0, chunk_reps=10)
        assert request.resolved_chunk_reps() is None
        assert request.with_chunk_reps(25).resolved_chunk_reps() is None


class TestBatchRequestAPI:
    def test_request_validates(self):
        with pytest.raises(ValueError, match="repetitions"):
            BatchRequest(repetitions=0, seed=0)
        with pytest.raises(ValueError, match="chunk_reps"):
            BatchRequest(repetitions=5, seed=0, chunk_reps=0)

    def test_deprecated_convention_warns_and_still_works(self):
        seen = []
        with pytest.warns(DeprecationWarning, match="BatchRequest"):
            out = run_batch(lambda s: seen.append(s) or s * 2,
                            repetitions=3, seed=7)
        assert seen == derive_seeds(7, 3)
        assert out == [s * 2 for s in seen]

    def test_deprecated_vector_batch_gets_scalar_seed(self):
        seen = []
        with pytest.warns(DeprecationWarning):
            with chunked_reps(2):  # legacy kernels must stay dense
                run_batch(None, repetitions=5, seed=9,
                          vector_batch=lambda s: seen.append(s) or s,
                          backend="vector")
        assert seen == [9]

    def test_mixing_request_and_legacy_args_rejected(self):
        request = BatchRequest(repetitions=2, seed=0,
                               event_task=lambda s: s)
        with pytest.raises(TypeError, match="either a BatchRequest"):
            run_batch(request, repetitions=2, seed=0)

    def test_unknown_backend_message_pinned(self):
        request = BatchRequest(repetitions=2, seed=0,
                               event_task=lambda s: s)
        with pytest.raises(ValueError, match="unknown backend"):
            run_batch(request, backend="quantum")

    def test_forced_vector_without_kernel_pinned(self):
        request = BatchRequest(repetitions=2, seed=0,
                               event_task=lambda s: s)
        with pytest.raises(ValueError, match="no vector kernel"):
            run_batch(request, backend="vector")

    def test_event_backend_needs_event_task(self):
        request = BatchRequest(repetitions=2, seed=0,
                               batch_task=lambda seeds: list(seeds))
        with pytest.raises(ValueError, match="event_task"):
            run_batch(request, backend="event")


class TestCallerKernelResolution:
    """Satellite 3: the executor bypass became a real resolution."""

    def test_direct_resolve_still_guards_by_default(self):
        with pytest.raises(BackendUnavailableError):
            dispatch.resolve(None, "vector")

    def test_trusted_resolve_returns_caller_kernel(self):
        resolution = dispatch.resolve(None, "vector",
                                      trust_caller_kernel=True)
        assert resolution.backend is CALLER_KERNEL
        assert resolution.name == "vector"
        assert resolution.backend.kernel == "caller-supplied kernel"

    def test_caller_kernel_never_competes_in_auto(self):
        assert CALLER_KERNEL not in dispatch.BACKENDS
        resolution = dispatch.resolve(None, "auto")
        assert resolution.backend is not CALLER_KERNEL

    def test_caller_kernel_chunks_like_any_vector_backend(self):
        sizes = []

        def batch_task(seeds):
            sizes.append(len(seeds))
            send = np.cumsum(np.ones((len(seeds), 3)), axis=1)
            return TrainBatch(send_times=send, recv_times=send + 0.1,
                              size_bytes=L)

        out = run_batch(BatchRequest(repetitions=7, seed=0,
                                     batch_task=batch_task,
                                     chunk_reps=3),
                        backend="vector")
        assert sizes == [3, 3, 1]
        assert out.repetitions == 7
