"""Tests for warm-up truncation heuristics (MSER-m and friends)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats.warmup import (
    batch_means,
    crossing_mean_rule,
    fixed_truncation,
    mser,
    mser_m,
)


class TestBatchMeans:
    def test_exact_batches(self):
        out = batch_means(np.array([1.0, 3.0, 5.0, 7.0]), 2)
        assert np.allclose(out, [2.0, 6.0])

    def test_tail_dropped(self):
        out = batch_means(np.array([1.0, 3.0, 5.0]), 2)
        assert np.allclose(out, [2.0])

    def test_batch_one_identity(self):
        sample = np.array([1.0, 2.0, 3.0])
        assert np.allclose(batch_means(sample, 1), sample)

    def test_too_small_sample(self):
        assert len(batch_means(np.array([1.0]), 2)) == 0

    def test_bad_m_rejected(self):
        with pytest.raises(ValueError):
            batch_means(np.array([1.0]), 0)


class TestMser:
    def test_detects_obvious_transient(self, rng):
        transient = np.full(20, 10.0) + rng.normal(0, 0.1, 20)
        steady = np.full(200, 1.0) + rng.normal(0, 0.1, 200)
        sample = np.concatenate([transient, steady])
        result = mser(sample)
        assert 15 <= result.truncate_before <= 30

    def test_stationary_sample_keeps_most(self, rng):
        sample = rng.normal(0, 1, 300)
        result = mser(sample)
        assert result.truncate_before < 100

    def test_truncated_matches_index(self, rng):
        sample = rng.normal(0, 1, 50)
        result = mser(sample)
        assert np.array_equal(result.truncated,
                              sample[result.truncate_before:])

    def test_retained_fraction(self):
        sample = np.concatenate([np.full(10, 5.0), np.full(90, 1.0)])
        result = mser(sample)
        assert result.retained_fraction == pytest.approx(
            len(result.truncated) / 100)

    def test_max_cut_fraction_respected(self, rng):
        sample = rng.normal(0, 1, 100)
        result = mser(sample, max_cut_fraction=0.25)
        assert result.truncate_before < 25

    def test_needs_two_observations(self):
        with pytest.raises(ValueError):
            mser(np.array([1.0]))

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            mser(np.array([1.0, 2.0]), max_cut_fraction=0.0)

    def test_constant_sample_zero_cut(self):
        result = mser(np.full(50, 3.0))
        assert result.truncate_before == 0


class TestMserM:
    def test_cut_in_original_units(self, rng):
        transient = np.full(20, 10.0)
        steady = np.full(180, 1.0) + rng.normal(0, 0.05, 180)
        sample = np.concatenate([transient, steady])
        result = mser_m(sample, m=2)
        assert result.truncate_before % 2 == 0
        assert 14 <= result.truncate_before <= 30

    def test_m1_equals_plain_mser(self, rng):
        sample = rng.normal(0, 1, 80)
        assert mser_m(sample, m=1).truncate_before == \
            mser(sample).truncate_before

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            mser_m(np.array([1.0, 2.0, 3.0]), m=2)

    def test_bad_m_rejected(self):
        with pytest.raises(ValueError):
            mser_m(np.arange(10.0), m=0)

    def test_truncated_values(self, rng):
        sample = rng.normal(0, 1, 40)
        result = mser_m(sample, m=2)
        assert np.array_equal(result.truncated,
                              sample[result.truncate_before:])


class TestFixedTruncation:
    def test_basic(self):
        result = fixed_truncation(np.arange(10.0), 3)
        assert result.truncate_before == 3
        assert np.array_equal(result.truncated, np.arange(3.0, 10.0))

    def test_zero_cut(self):
        result = fixed_truncation(np.arange(5.0), 0)
        assert len(result.truncated) == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            fixed_truncation(np.arange(5.0), 5)
        with pytest.raises(ValueError):
            fixed_truncation(np.arange(5.0), -1)


class TestCrossingMeanRule:
    def test_monotone_ramp_truncates_at_crossing(self):
        sample = np.concatenate([np.zeros(10), np.full(10, 2.0)])
        result = crossing_mean_rule(sample)
        assert result.truncate_before == 10

    def test_never_crossing_keeps_all(self):
        sample = np.full(10, 1.0)
        result = crossing_mean_rule(sample)
        assert result.truncate_before == 0

    def test_multiple_crossings(self, rng):
        sample = rng.normal(0, 1, 100)
        one = crossing_mean_rule(sample, crossings_required=1)
        three = crossing_mean_rule(sample, crossings_required=3)
        assert three.truncate_before >= one.truncate_before

    def test_validation(self):
        with pytest.raises(ValueError):
            crossing_mean_rule(np.array([1.0]))
        with pytest.raises(ValueError):
            crossing_mean_rule(np.arange(5.0), crossings_required=0)


class TestMserProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3),
                    min_size=2, max_size=200))
    def test_truncation_always_valid(self, values):
        sample = np.array(values)
        result = mser(sample)
        assert 0 <= result.truncate_before < len(sample)
        assert len(result.truncated) >= 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=40, max_value=200),
           st.integers(min_value=0, max_value=2**31))
    def test_bigger_transient_bigger_cut(self, transient_len, steady_len,
                                         seed):
        rng = np.random.default_rng(seed)
        sample = np.concatenate([
            np.full(transient_len, 50.0),
            rng.normal(0, 1, steady_len),
        ])
        result = mser(sample)
        # The cut lands at or after the end of the flat transient
        # (noise may push it slightly further).
        assert result.truncate_before >= transient_len - 1


class TestGeweke:
    def test_stationary_sample_small_z(self, rng):
        from repro.stats.warmup import geweke_statistic
        zs = [abs(geweke_statistic(rng.normal(0, 1, 500)))
              for _ in range(50)]
        assert np.mean(np.array(zs) <= 2.0) > 0.8

    def test_transient_sample_large_z(self, rng):
        from repro.stats.warmup import geweke_statistic
        sample = np.concatenate([np.full(50, 10.0),
                                 rng.normal(0, 1, 450)])
        assert abs(geweke_statistic(sample)) > 3.0

    def test_constant_sample_zero(self):
        from repro.stats.warmup import geweke_statistic
        assert geweke_statistic(np.full(100, 2.0)) == 0.0

    def test_statistic_validation(self):
        from repro.stats.warmup import geweke_statistic
        with pytest.raises(ValueError):
            geweke_statistic(np.arange(5.0))
        with pytest.raises(ValueError):
            geweke_statistic(np.arange(100.0), first_fraction=0.6,
                             last_fraction=0.6)

    def test_truncation_removes_transient(self, rng):
        from repro.stats.warmup import geweke_truncation
        sample = np.concatenate([np.full(40, 10.0),
                                 rng.normal(0, 1, 400)])
        result = geweke_truncation(sample)
        assert result.truncate_before >= 30
        assert abs(result.truncated.mean()) < 1.0

    def test_truncation_keeps_stationary(self, rng):
        from repro.stats.warmup import geweke_truncation
        sample = rng.normal(0, 1, 400)
        result = geweke_truncation(sample)
        assert result.truncate_before <= len(sample) // 2

    def test_truncation_validation(self):
        from repro.stats.warmup import geweke_truncation
        with pytest.raises(ValueError):
            geweke_truncation(np.arange(10.0))
        with pytest.raises(ValueError):
            geweke_truncation(np.arange(100.0), z_threshold=0.0)
        with pytest.raises(ValueError):
            geweke_truncation(np.arange(100.0), step_fraction=0.9)


class TestMserVectorizedRegression:
    """The vectorized MSER scan is pinned to the original loop."""

    @staticmethod
    def _loop_reference(sample, max_cut_fraction=0.75):
        """The pre-vectorization per-cutoff loop, verbatim."""
        sample = np.asarray(sample, dtype=float)
        n = len(sample)
        max_cut = max(1, int(np.floor(n * max_cut_fraction)))
        suffix_sum = np.cumsum(sample[::-1])[::-1]
        suffix_sq = np.cumsum((sample ** 2)[::-1])[::-1]
        scores = np.full(n, np.inf)
        for d in range(0, max_cut):
            kept = n - d
            if kept < 2:
                break
            mean = suffix_sum[d] / kept
            var = suffix_sq[d] / kept - mean ** 2
            scores[d] = max(var, 0.0) / kept
        best = int(np.argmin(scores[:max_cut]))
        return best, scores

    def test_matches_loop_on_random_samples(self):
        rng = np.random.default_rng(0)
        for trial in range(30):
            n = int(rng.integers(2, 200))
            sample = rng.exponential(1.0, n)
            if trial % 3 == 0:  # transient-shaped prefix
                cut = int(rng.integers(0, n))
                sample[:cut] += rng.uniform(1.0, 5.0)
            result = mser(sample)
            best, scores = self._loop_reference(sample)
            assert result.truncate_before == best
            # Scalar ``x ** 2`` and the vectorized power can differ in
            # the last ulp; the scan itself must agree to 1e-12.
            finite = np.isfinite(scores)
            assert np.array_equal(finite, np.isfinite(result.scores))
            assert np.allclose(result.scores[finite], scores[finite],
                               rtol=1e-12, atol=0.0)

    def test_matches_loop_on_tiny_and_cut_fractions(self):
        rng = np.random.default_rng(1)
        for fraction in (0.1, 0.5, 1.0):
            for n in (2, 3, 5, 17):
                sample = rng.normal(0, 1, n)
                result = mser(sample, max_cut_fraction=fraction)
                best, scores = self._loop_reference(sample, fraction)
                assert result.truncate_before == best
                finite = np.isfinite(scores)
                assert np.array_equal(finite, np.isfinite(result.scores))
                assert np.allclose(result.scores[finite], scores[finite],
                                   rtol=1e-12, atol=0.0)

    def test_constant_sample_truncates_nothing(self):
        result = mser(np.ones(50))
        assert result.truncate_before == 0
