"""End-to-end integration tests reproducing the paper's key claims
at reduced scale.
"""

import numpy as np
import pytest

from repro.analytic.bianchi import BianchiModel
from repro.analytic.rate_response import csma_rate_response
from repro.core.correction import mser_corrected_rate
from repro.core.estimators import packet_pair_capacity, train_dispersion_rate
from repro.core.transient import DelayMatrix, transient_duration
from repro.testbed.channel import SimulatedWlanChannel
from repro.testbed.prober import Prober, ProbeSessionConfig
from repro.traffic.generators import PoissonGenerator
from repro.traffic.probe import ProbeTrain


@pytest.fixture(scope="module")
def bianchi():
    return BianchiModel()


def wlan_prober(cross_rate, repetitions=20):
    cross = [("cross", PoissonGenerator(cross_rate, 1500))] \
        if cross_rate > 0 else []
    return Prober(SimulatedWlanChannel(cross, warmup=0.15),
                  ProbeSessionConfig(repetitions=repetitions,
                                     ideal_clocks=True))


class TestPaperClaim1RateResponse:
    """Claim: the rate response flattens at B (not at A) — section 3."""

    def test_long_train_follows_eq3(self, bianchi):
        prober = wlan_prober(4.5e6, repetitions=4)
        fair_share = bianchi.fair_share(2)
        for rate in (2e6, 8e6):
            measured = prober.dispersion_rate(250, rate, seed=int(rate))
            expected = float(csma_rate_response(
                np.array([rate]), fair_share)[0])
            assert measured == pytest.approx(expected, rel=0.12)

    def test_no_knee_at_available_bandwidth(self, bianchi):
        """Probing just above A (but below B) is still undisturbed."""
        capacity = bianchi.capacity()
        cross_rate = 4.5e6
        available = capacity - cross_rate  # ~1.7 Mb/s
        prober = wlan_prober(cross_rate, repetitions=5)
        rate = available * 1.3
        measured = prober.dispersion_rate(250, rate, seed=1)
        assert measured == pytest.approx(rate, rel=0.08)


class TestPaperClaim2Transient:
    """Claim: access delays show a transient of bounded length — sec 4."""

    @pytest.fixture(scope="class")
    def matrix(self):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, 1500))], warmup=0.2)
        train = ProbeTrain.at_rate(120, 5e6)
        raws = channel.send_trains(train, 120, seed=31)
        return DelayMatrix(np.vstack([r.access_delays for r in raws]))

    def test_first_packets_accelerated(self, matrix):
        profile = matrix.mean_profile()
        steady = matrix.steady_state_mean()
        assert profile[0] < 0.8 * steady

    def test_transient_bounded_by_150(self, matrix):
        duration = transient_duration(matrix.mean_profile(),
                                      tolerance=0.1, sustained=False)
        assert duration.settled
        assert duration.n_packets <= 150

    def test_profile_monotone_trend(self, matrix):
        """Smoothed early profile increases toward steady state."""
        profile = matrix.mean_profile()
        early = profile[:4].mean()
        mid = profile[10:20].mean()
        assert early < mid


class TestPaperClaim3ShortTrainBias:
    """Claim: short trains overestimate B at high rates — section 6."""

    def test_short_trains_overestimate(self, bianchi):
        prober = wlan_prober(3e6, repetitions=25)
        fair_share = bianchi.fair_share(2)
        rate = 8e6
        short = prober.dispersion_rate(3, rate, seed=2)
        long = prober.dispersion_rate(80, rate, seed=3)
        assert short > fair_share * 1.05
        assert abs(long - fair_share) < abs(short - fair_share)

    def test_packet_pair_overestimates_b(self, bianchi):
        prober = wlan_prober(4e6, repetitions=60)
        pair_estimate = prober.packet_pair_estimate(seed=4)
        fair_share = bianchi.fair_share(2)
        capacity = bianchi.capacity()
        assert pair_estimate > fair_share * 1.05
        assert pair_estimate < capacity * 0.97

    def test_packet_pair_without_contention_reports_capacity(self, bianchi):
        # Enough pairs for the mean backoff (std ~ 9 slots/pair) to
        # converge within a few percent.
        prober = wlan_prober(0.0, repetitions=80)
        estimate = prober.packet_pair_estimate(seed=5)
        assert estimate == pytest.approx(bianchi.capacity(), rel=0.05)


class TestPaperClaim4MserCorrection:
    """Claim: MSER-2 truncation improves short-train accuracy — sec 7.4."""

    def test_mser_reduces_overestimation(self, bianchi):
        prober = wlan_prober(3e6, repetitions=40)
        fair_share = bianchi.fair_share(2)
        measurements = prober.measure_train(20, 8e6, seed=6)
        raw = train_dispersion_rate(measurements)
        corrected = mser_corrected_rate(measurements, m=2)
        assert abs(corrected - fair_share) <= abs(raw - fair_share)


class TestAblationImmediateAccess:
    """DESIGN.md ablation: without immediate access the first-packet
    acceleration (and with it, most of the transient) disappears."""

    def _first_vs_steady(self, immediate):
        channel = SimulatedWlanChannel(
            [("cross", PoissonGenerator(4e6, 1500))], warmup=0.15,
            immediate_access=immediate)
        train = ProbeTrain.at_rate(60, 5e6)
        raws = channel.send_trains(train, 80, seed=41)
        matrix = DelayMatrix(np.vstack([r.access_delays for r in raws]))
        return matrix.mean_profile()[0] / matrix.steady_state_mean()

    def test_transient_shrinks_without_immediate_access(self):
        with_rule = self._first_vs_steady(True)
        without_rule = self._first_vs_steady(False)
        assert with_rule < without_rule
