"""Importable test helpers (KS assertion + seed parametrization).

These live outside ``conftest.py`` because test modules import them by
name: a full-repo run collects ``benchmarks/`` first, so the bare
module name ``conftest`` resolves to *benchmarks*' conftest and
``from conftest import ...`` breaks.  ``helpers`` exists only under
``tests/`` and is unambiguous.  ``tests/conftest.py`` wraps
:func:`ks_assert_impl` in the session ``ks_assert`` fixture.
"""

import numpy as np
import pytest

from repro.stats.ks import ks_distance, ks_threshold


def seed_params(*seeds):
    """Parametrize a fixture/test over master seeds.

    ``seeds[0]`` is the tier-1 seed; the rest only run under
    ``-m seed_sweep``.
    """
    return [seeds[0]] + [pytest.param(s, marks=pytest.mark.seed_sweep)
                         for s in seeds[1:]]


def ks_assert_impl(a, b, alpha=0.01):
    """Two-sample KS assertion at the repo-wide pin level.

    Flattens both samples; fails with the measured distance and the
    threshold in the message.  Pins that compare *correlated* samples
    (all probes of a repetition share one cross-traffic path) must
    pass per-repetition statistics — rep means, a fixed probe index —
    not the pooled matrix, or the threshold is anti-conservative.
    """
    a = np.asarray(a, dtype=float).ravel()
    b = np.asarray(b, dtype=float).ravel()
    distance = ks_distance(a, b)
    threshold = ks_threshold(len(a), len(b), alpha=alpha)
    assert distance <= threshold, (
        f"KS distance {distance:.4f} exceeds the alpha={alpha} "
        f"threshold {threshold:.4f} ({len(a)} vs {len(b)} samples)")
