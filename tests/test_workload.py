"""Tests for the workload process and the intrusion residual."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.queueing.workload import (
    WorkloadProcess,
    intrusion_residual_recursive,
    residual_bounds,
)


class TestWorkloadProcess:
    def test_empty_process_is_zero(self):
        process = WorkloadProcess(np.array([]), np.array([]))
        assert process(0.0) == 0.0
        assert process.mean_utilization() == 0.0

    def test_workload_right_after_arrival(self):
        process = WorkloadProcess([1.0], [0.5])
        assert process(1.0) == pytest.approx(0.5)

    def test_workload_decreases_linearly(self):
        process = WorkloadProcess([0.0], [1.0])
        assert process(0.25) == pytest.approx(0.75)
        assert process(0.999) == pytest.approx(0.001, abs=1e-9)
        assert process(1.5) == 0.0

    def test_workload_accumulates(self):
        process = WorkloadProcess([0.0, 0.0], [1.0, 1.0])
        assert process(0.0) == pytest.approx(2.0)

    def test_before_excludes_arrival_at_t(self):
        process = WorkloadProcess([1.0], [0.5])
        assert process.before(1.0) == 0.0
        assert process(1.0) == pytest.approx(0.5)

    def test_before_matches_limit(self):
        process = WorkloadProcess([0.0, 1.0], [0.6, 0.5])
        # Just before the second arrival the first job has 0 remaining
        # (it finished at 0.6).
        assert process.before(1.0) == 0.0

    def test_vectorized_at(self):
        process = WorkloadProcess([0.0], [1.0])
        values = process.at(np.array([0.0, 0.5, 2.0]))
        assert np.allclose(values, [1.0, 0.5, 0.0])

    def test_utilization_window(self):
        process = WorkloadProcess([0.0], [1.0])
        assert process.utilization(0.0, 2.0) == pytest.approx(0.5)

    def test_mean_utilization_busy_path(self):
        process = WorkloadProcess([0.0, 0.5], [1.0, 1.0])
        # Busy continuously from 0 to 2.
        assert process.mean_utilization() == pytest.approx(1.0)

    def test_offered_workload_window(self):
        process = WorkloadProcess([0.5, 1.5], [0.2, 0.3])
        assert process.offered_workload(0.0, 1.0) == pytest.approx(0.2)
        assert process.offered_workload(0.0, 2.0) == pytest.approx(0.5)

    def test_averaging_function(self):
        process = WorkloadProcess([0.5], [0.2])
        assert process.averaging_function(0.0, 1.0) == pytest.approx(0.2)

    def test_averaging_function_validation(self):
        process = WorkloadProcess([0.5], [0.2])
        with pytest.raises(ValueError):
            process.averaging_function(1.0, 1.0)


class TestIntrusionResidual:
    def test_first_packet_zero(self):
        residual = intrusion_residual_recursive([1e-3, 1e-3], 2e-3)
        assert residual[0] == 0.0

    def test_fast_probing_accumulates(self):
        # mu = 1 ms, gap = 0.5 ms: each packet adds 0.5 ms of backlog.
        residual = intrusion_residual_recursive([1e-3] * 5, 0.5e-3)
        assert np.allclose(residual, [0.0, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3])

    def test_slow_probing_never_queues(self):
        residual = intrusion_residual_recursive([1e-3] * 5, 5e-3)
        assert np.allclose(residual, 0.0)

    def test_utilization_shrinks_free_gap(self):
        mu = [1e-3, 1e-3]
        no_cross = intrusion_residual_recursive(mu, 2e-3)
        with_cross = intrusion_residual_recursive(mu, 2e-3,
                                                  utilizations=[0.8])
        assert with_cross[1] > no_cross[1]

    def test_empty_input(self):
        assert len(intrusion_residual_recursive([], 1e-3)) == 0

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            intrusion_residual_recursive([1e-3], -1.0)

    def test_utilization_length_mismatch(self):
        with pytest.raises(ValueError):
            intrusion_residual_recursive([1e-3] * 3, 1e-3,
                                         utilizations=[0.5])

    def test_matches_simulated_hol_waits(self):
        """R_i from the recursion equals the DCF station's HOL waits."""
        from repro.testbed.channel import SimulatedWlanChannel
        from repro.traffic.generators import PoissonGenerator
        from repro.traffic.probe import ProbeTrain

        channel = SimulatedWlanChannel(
            [("x", PoissonGenerator(2e6, 1500))], start_jitter=0.0)
        train = ProbeTrain.at_rate(12, 6e6)
        raw = channel.send_train(train, seed=9)
        scenario = raw.scenario
        probe = scenario.station("probe").completed("probe")
        measured_residual = np.array([r.hol - r.arrival for r in probe])
        recursive = intrusion_residual_recursive(
            raw.access_delays, train.gap)
        assert np.allclose(measured_residual, recursive, atol=1e-9)


class TestResidualBounds:
    def test_bounds_order(self):
        lower, upper = residual_bounds([1e-3, 2e-3, 3e-3], 1.5e-3)
        assert lower <= upper

    def test_saturating_regime_lower_positive(self):
        lower, _ = residual_bounds([2e-3, 2e-3, 2e-3], 1e-3)
        assert lower == pytest.approx(2e-3)

    def test_slow_probing_lower_zero(self):
        lower, _ = residual_bounds([1e-3, 1e-3], 5e-3)
        assert lower == 0.0

    def test_upper_is_head_sum(self):
        _, upper = residual_bounds([1e-3, 2e-3, 3e-3], 1e-3)
        assert upper == pytest.approx(3e-3)

    def test_needs_two_packets(self):
        with pytest.raises(ValueError):
            residual_bounds([1e-3], 1e-3)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=1e-4, max_value=1e-2),
                    min_size=2, max_size=30),
           st.floats(min_value=0.0, max_value=1e-2))
    def test_recursion_within_bounds(self, mu, gap):
        mu = np.array(mu)
        lower, upper = residual_bounds(mu, gap)
        final = intrusion_residual_recursive(mu, gap)[-1]
        assert lower - 1e-12 <= final <= upper + 1e-12
