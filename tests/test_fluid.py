"""Tests for the fluid airtime model."""

import numpy as np
import pytest

from repro.analytic.bianchi import BianchiModel
from repro.analytic.fluid import FluidAirtimeModel, StationOffer
from repro.analytic.metrics import fluid_achievable_throughput


@pytest.fixture
def model():
    return FluidAirtimeModel()


class TestStationOffer:
    def test_packet_rate(self):
        offer = StationOffer(1.2e6, 1500)
        assert offer.packet_rate == pytest.approx(100.0)

    def test_backlogged_station(self):
        assert StationOffer(float("inf")).packet_rate == float("inf")

    def test_validation(self):
        with pytest.raises(ValueError):
            StationOffer(-1.0)
        with pytest.raises(ValueError):
            StationOffer(1e6, 0)


class TestAchievedThroughputs:
    def test_single_unsaturated_station(self, model):
        achieved = model.achieved_throughputs([StationOffer(2e6)])
        assert achieved[0] == pytest.approx(2e6)

    def test_single_saturated_station_gets_capacity(self, model):
        achieved = model.achieved_throughputs([StationOffer(float("inf"))])
        bianchi_c = BianchiModel().capacity()
        assert achieved[0] == pytest.approx(bianchi_c, rel=0.02)

    def test_two_backlogged_stations_split_equally(self, model):
        offers = [StationOffer(float("inf")), StationOffer(float("inf"))]
        achieved = model.achieved_throughputs(offers)
        assert achieved[0] == pytest.approx(achieved[1])
        # Equal to half the capacity in the collision-free fluid view.
        assert achieved[0] == pytest.approx(
            model.achieved_throughputs([StationOffer(float("inf"))])[0] / 2,
            rel=1e-6)

    def test_unsaturated_stations_keep_their_rate(self, model):
        offers = [StationOffer(float("inf")), StationOffer(1e6)]
        achieved = model.achieved_throughputs(offers)
        assert achieved[1] == pytest.approx(1e6)
        assert achieved[0] > achieved[1]

    def test_conservation_of_airtime(self, model):
        offers = [StationOffer(float("inf")),
                  StationOffer(2e6, 576),
                  StationOffer(1e6, 40)]
        assert model.utilization(offers) == pytest.approx(1.0, abs=1e-9)

    def test_empty_rejected(self, model):
        with pytest.raises(ValueError):
            model.achieved_throughputs([])

    def test_small_packets_cost_more_airtime(self, model):
        # Same bit rate in small packets consumes more channel time.
        big = model.utilization([StationOffer(1e6, 1500)])
        small = model.utilization([StationOffer(1e6, 100)])
        assert small > 2 * big


class TestAchievableThroughput:
    def test_matches_two_station_fluid_formula(self, model):
        """Consistency with the simple fluid line of figure 16."""
        capacity = model.achieved_throughputs(
            [StationOffer(float("inf"))])[0]
        fair_share = model.achieved_throughputs(
            [StationOffer(float("inf")), StationOffer(float("inf"))])[0]
        for cross in (0.0, 1e6, 2e6, 4e6, 6e6):
            expected = fluid_achievable_throughput(capacity, cross,
                                                   fair_share)
            predicted = model.achievable_throughput(
                1500, [StationOffer(cross)] if cross > 0 else [])
            assert predicted == pytest.approx(expected, rel=0.02)

    def test_decreases_with_cross_load(self, model):
        values = [model.achievable_throughput(1500, [StationOffer(r)])
                  for r in (0.5e6, 2e6, 4e6)]
        assert values[0] > values[1] > values[2]

    def test_heterogeneous_fig9_mix(self, model):
        """The figure-9 contender mix leaves little room for a probe."""
        cross = [StationOffer(0.1e6, 40), StationOffer(0.5e6, 576),
                 StationOffer(0.75e6, 1000), StationOffer(2.0e6, 1500)]
        b = model.achievable_throughput(1500, cross)
        # The mix consumes most airtime; B is far below the capacity
        # yet positive.
        capacity = model.achieved_throughputs(
            [StationOffer(float("inf"))])[0]
        assert 0 < b < 0.4 * capacity

    def test_prediction_matches_simulator(self, model):
        """Fluid B vs. measured saturated-probe throughput (fig-9 mix)."""
        from repro.mac.scenario import StationSpec, WlanScenario
        from repro.traffic.generators import CBRGenerator, PoissonGenerator
        cross = [StationOffer(0.5e6, 576), StationOffer(2.0e6, 1500)]
        predicted = model.achievable_throughput(1500, cross)
        scenario = WlanScenario()
        specs = [
            StationSpec("probe", generator=CBRGenerator(9e6, 1500,
                                                        flow="probe")),
            StationSpec("c576", generator=PoissonGenerator(0.5e6, 576)),
            StationSpec("c1500", generator=PoissonGenerator(2.0e6, 1500)),
        ]
        result = scenario.run(specs, horizon=4.0, seed=5, until=4.0)
        measured = result.station("probe").throughput_bps(0.5, 4.0)
        # Two opposing approximations: collisions are neglected (model
        # optimistic) but every packet is charged a full mean backoff
        # even though real countdowns overlap (model pessimistic).  The
        # net error stays within ~15%.
        assert measured == pytest.approx(predicted, rel=0.15)
