"""Tests for the Bianchi DCF model."""

import pytest

from repro.analytic.bianchi import BianchiModel
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams


@pytest.fixture
def model():
    return BianchiModel(PhyParams.dot11b(), 1500)


class TestFixedPoint:
    def test_single_station_no_collisions(self, model):
        solution = model.solve(1)
        assert solution.collision_probability == 0.0
        assert solution.ps == 1.0

    def test_single_station_tau(self, model):
        # tau = 2/(W+1) with W = 32 when p = 0.
        assert model.solve(1).tau == pytest.approx(2 / 33)

    def test_collision_probability_increases_with_n(self, model):
        p2 = model.solve(2).collision_probability
        p5 = model.solve(5).collision_probability
        p10 = model.solve(10).collision_probability
        assert 0 < p2 < p5 < p10 < 1

    def test_fixed_point_consistency(self, model):
        for n in (2, 3, 5, 10):
            solution = model.solve(n)
            tau, p = solution.tau, solution.collision_probability
            implied_p = 1 - (1 - tau) ** (n - 1)
            assert p == pytest.approx(implied_p, abs=1e-6)

    def test_rejects_zero_stations(self, model):
        with pytest.raises(ValueError):
            model.solve(0)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            BianchiModel(size_bytes=0)


class TestThroughput:
    def test_capacity_close_to_airtime_estimate(self, model):
        airtime = AirtimeModel(PhyParams.dot11b())
        assert model.capacity() == pytest.approx(
            airtime.link_capacity(1500), rel=0.02)

    def test_total_throughput_decreases_beyond_two(self, model):
        # With CW_min = 31 the aggregate throughput peaks at a small
        # number of stations (less idle backoff waste than a lone
        # sender) and then decays as collisions dominate — exactly
        # Bianchi's published behaviour.
        totals = [model.solve(n).total_throughput_bps for n in (2, 5, 15, 40)]
        assert totals[0] > totals[1] > totals[2] > totals[3]

    def test_fair_share_halves_roughly(self, model):
        capacity = model.capacity()
        fair2 = model.fair_share(2)
        assert 0.4 * capacity < fair2 < 0.6 * capacity

    def test_fair_share_decreases_with_n(self, model):
        shares = [model.fair_share(n) for n in (2, 3, 4, 6)]
        assert all(a > b for a, b in zip(shares, shares[1:]))

    def test_per_station_sums_to_total(self, model):
        solution = model.solve(4)
        assert solution.throughput_per_station_bps * 4 == pytest.approx(
            solution.total_throughput_bps)

    def test_small_packets_lower_capacity(self):
        small = BianchiModel(size_bytes=100).capacity()
        large = BianchiModel(size_bytes=1500).capacity()
        assert small < large / 3

    def test_collision_fraction_range(self, model):
        assert model.collision_fraction(1) == 0.0
        frac2 = model.collision_fraction(2)
        frac8 = model.collision_fraction(8)
        assert 0 < frac2 < frac8 < 1

    def test_mean_access_delay_grows_with_n(self, model):
        d2 = model.solve(2).mean_access_delay
        d6 = model.solve(6).mean_access_delay
        assert d6 > d2 > 0

    def test_mean_slot_duration_positive(self, model):
        assert model.solve(3).mean_slot_duration > 0

    def test_dot11g_larger_capacity(self):
        b = BianchiModel(PhyParams.dot11b()).capacity()
        g = BianchiModel(PhyParams.dot11g()).capacity()
        assert g > 2.5 * b
