"""Tests for the MSER-based measurement correction."""

import numpy as np
import pytest

from repro.core.correction import (
    mser_corrected_gap,
    mser_corrected_rate,
    mser_truncation_index,
    truncation_profile,
)
from repro.core.dispersion import TrainMeasurement


def measurement_with_gaps(gaps, size=1500):
    n = len(gaps) + 1
    send = np.arange(n) * 1e-3
    recv = np.concatenate([[0.0], np.cumsum(gaps)]) + 0.002
    return TrainMeasurement(send, recv, size)


def transient_measurement(seed=0, n=21, fast=2e-3, slow=4e-3, k=6):
    rng = np.random.default_rng(seed)
    gaps = np.concatenate([
        np.full(k, fast), np.full(n - 1 - k, slow)
    ]) + rng.normal(0, 1e-4, n - 1)
    return measurement_with_gaps(np.abs(gaps))


class TestMserCorrectedGap:
    def test_removes_fast_transient(self):
        result = mser_corrected_gap(transient_measurement(), m=2)
        assert result.truncated_packets >= 4
        assert result.corrected_gap > result.raw_gap

    def test_no_change_for_stationary_train(self):
        rng = np.random.default_rng(1)
        gaps = np.abs(3e-3 + rng.normal(0, 1e-5, 30))
        result = mser_corrected_gap(measurement_with_gaps(gaps), m=2)
        assert result.corrected_gap == pytest.approx(result.raw_gap,
                                                     rel=0.05)

    def test_changed_flag(self):
        result = mser_corrected_gap(transient_measurement(), m=2)
        assert result.changed == (result.truncated_packets > 0)

    def test_fields(self):
        m = transient_measurement()
        result = mser_corrected_gap(m, m=2)
        assert result.n == m.n
        assert result.raw_gap == pytest.approx(m.output_gap)


class TestMserTruncationIndex:
    def test_profile_based_cut(self):
        trains = [transient_measurement(seed=s) for s in range(30)]
        cut = mser_truncation_index(trains, m=2)
        assert 4 <= cut <= 10

    def test_no_cut_for_stationary(self):
        rng = np.random.default_rng(2)
        trains = [measurement_with_gaps(np.abs(
            3e-3 + rng.normal(0, 1e-5, 40))) for _ in range(40)]
        # A stationary profile should keep (almost) everything.
        assert mser_truncation_index(trains, m=2) <= 8

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mser_truncation_index([])


class TestMserCorrectedRate:
    def test_corrected_rate_closer_to_steady(self):
        trains = [transient_measurement(seed=s) for s in range(40)]
        raw_gap = np.mean([t.output_gap for t in trains])
        raw_rate = 1500 * 8 / raw_gap
        corrected = mser_corrected_rate(trains, m=2)
        steady_rate = 1500 * 8 / 4e-3
        assert abs(corrected - steady_rate) < abs(raw_rate - steady_rate)

    def test_per_train_variant_runs(self):
        trains = [transient_measurement(seed=s) for s in range(10)]
        rate = mser_corrected_rate(trains, m=2, per_train=True)
        assert rate > 0

    def test_mixed_sizes_rejected(self):
        with pytest.raises(ValueError):
            mser_corrected_rate([
                transient_measurement(),
                measurement_with_gaps(np.full(20, 3e-3), size=40),
            ])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mser_corrected_rate([])


class TestTruncationProfile:
    def test_profile_length(self):
        trains = [transient_measurement(seed=s) for s in range(15)]
        profile = truncation_profile(trains, m=2)
        assert len(profile) == 15
        assert np.all(profile >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            truncation_profile([])
