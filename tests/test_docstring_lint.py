"""The public runtime/analysis API must stay documented.

Runs the same lint CI uses (``tools/lint_docstrings.py``) so a missing
docstring fails locally before it fails in the workflow.
"""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import lint_docstrings  # noqa: E402  (needs the tools dir on the path)


def test_default_paths_fully_documented():
    """runtime, analysis, sim and mac — everything CI lints."""
    violations = lint_docstrings.run(
        [str(REPO_ROOT / path) for path in lint_docstrings.DEFAULT_PATHS])
    assert violations == []


def test_default_paths_cover_both_dcf_backends():
    assert "src/repro/sim" in lint_docstrings.DEFAULT_PATHS
    assert "src/repro/mac" in lint_docstrings.DEFAULT_PATHS


def test_lint_flags_missing_docstrings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text('"""Module doc."""\n\ndef exposed():\n    pass\n')
    violations = lint_docstrings.run([str(bad)])
    assert len(violations) == 1
    assert "exposed" in violations[0]


def test_lint_ignores_private_names(tmp_path):
    ok = tmp_path / "ok.py"
    ok.write_text('"""Module doc."""\n\ndef _helper():\n    pass\n')
    assert lint_docstrings.run([str(ok)]) == []


def test_lint_rejects_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        lint_docstrings.run([str(tmp_path / "nope")])
