"""Property-based scenario generation for the differential harness.

Every hand-written KS pin checks one operating point of one kernel.
This module turns backend equivalence into a *generative* property:
:func:`scenario_cases` samples runnable WLAN channel configurations —
probe train shape, cross-traffic mix (Poisson/CBR/on-off, occasionally
an event-only trace replay), FIFO sharing, RTS/CTS, retry caps, the
immediate-access rule — and the differential runner
(``tests/test_differential_harness.py``) resolves each through
``repro.backends.dispatch`` and KS-compares the eligible kernel
against the event engine at matched seeds.

hypothesis is optional: when it is not installed (the CI smoke lane
ships only numpy+scipy) ``HAS_HYPOTHESIS`` is ``False``,
:func:`scenario_cases` is ``None`` and the differential tests skip.

The bounds below are deliberate, not incidental:

* offered load stays under the 802.11b MAC capacity so trains drain
  and horizons stay short;
* ``retry_limit`` is drawn from {None, 6} — the event channel raises
  on a lost *probe* packet, and at these contention levels a cap of 6
  makes probe drops ~1e-6 while still exercising the retry counters;
* on-off periods are in the tens of milliseconds so a train actually
  straddles ON/OFF transitions.
"""

from dataclasses import dataclass
from typing import Optional, Tuple

try:
    from hypothesis import strategies as st
    HAS_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised in the smoke lane
    st = None
    HAS_HYPOTHESIS = False

from repro.testbed.channel import SimulatedWlanChannel
from repro.traffic.generators import (
    CBRGenerator,
    OnOffGenerator,
    PoissonGenerator,
    TraceGenerator,
)
from repro.traffic.probe import ProbeTrain

L = 1500

#: Mean-rate pool (bps) for one cross station.
CROSS_RATES = (1e6, 1.5e6, 2e6)

#: Probe-rate pool (bps).
PROBE_RATES = (2e6, 3e6, 4e6, 5e6)


@dataclass(frozen=True)
class ScenarioCase:
    """One runnable channel/train configuration plus its seed."""

    n_probe: int
    probe_rate_bps: float
    #: ``(kind, mean_rate_bps)`` per contending station; kinds are
    #: ``poisson`` / ``cbr`` / ``onoff`` / ``trace`` (event-only).
    cross: Tuple[Tuple[str, float], ...]
    onoff_scale: float
    fifo_rate_bps: Optional[float]
    rts: bool
    retry_limit: Optional[int]
    immediate_access: bool
    seed: int

    def _generator(self, kind: str, rate: float):
        if kind == "poisson":
            return PoissonGenerator(rate, L)
        if kind == "cbr":
            return CBRGenerator(rate, L)
        if kind == "onoff":
            # 50% duty cycle: peak = 2 x mean rate.
            return OnOffGenerator(2 * rate, self.onoff_scale,
                                  self.onoff_scale, L)
        if kind == "trace":
            gap = L * 8 / rate
            return TraceGenerator(
                [(0.05 + k * gap, L) for k in range(40)])
        raise ValueError(f"unknown cross kind {kind!r}")

    def build_channel(self) -> SimulatedWlanChannel:
        stations = [(f"x{i}-{kind}", self._generator(kind, rate))
                    for i, (kind, rate) in enumerate(self.cross)]
        fifo = (PoissonGenerator(self.fifo_rate_bps, L, flow="fifo")
                if self.fifo_rate_bps is not None else None)
        return SimulatedWlanChannel(
            stations, fifo_cross=fifo, warmup=0.1,
            rts_threshold=0 if self.rts else None,
            retry_limit=self.retry_limit,
            immediate_access=self.immediate_access)

    def train(self) -> ProbeTrain:
        return ProbeTrain.at_rate(self.n_probe, self.probe_rate_bps, L)

    @property
    def event_only(self) -> bool:
        return any(kind == "trace" for kind, _ in self.cross)


if HAS_HYPOTHESIS:

    @st.composite
    def scenario_cases(draw) -> ScenarioCase:
        """A bounded, runnable :class:`ScenarioCase`.

        Every drawn configuration keeps the offered load under
        capacity and finishes a 30-repetition differential comparison
        in well under a second per backend.
        """
        n_probe = draw(st.integers(min_value=8, max_value=20))
        probe_rate = draw(st.sampled_from(PROBE_RATES))
        n_cross = draw(st.integers(min_value=0, max_value=2))
        kind_pool = ("poisson", "cbr", "onoff", "onoff", "poisson",
                     "cbr", "onoff", "trace")
        cross = tuple(
            (draw(st.sampled_from(kind_pool)),
             draw(st.sampled_from(CROSS_RATES)))
            for _ in range(n_cross))
        # Keep the aggregate mean load under ~6 Mb/s (802.11b MAC
        # capacity for 1500 B frames): drop the probe rate if needed.
        load = probe_rate + sum(rate for _, rate in cross)
        if load > 6e6:
            probe_rate = PROBE_RATES[0]
        onoff_scale = draw(st.sampled_from((0.02, 0.05, 0.1)))
        fifo_rate = draw(st.sampled_from((None, 0.5e6, 1e6)))
        rts = draw(st.booleans())
        retry_limit = draw(st.sampled_from((None, 6)))
        immediate_access = draw(st.booleans())
        seed = draw(st.integers(min_value=0, max_value=2 ** 20))
        return ScenarioCase(
            n_probe=n_probe, probe_rate_bps=probe_rate, cross=cross,
            onoff_scale=onoff_scale, fifo_rate_bps=fifo_rate, rts=rts,
            retry_limit=retry_limit, immediate_access=immediate_access,
            seed=seed)

else:  # pragma: no cover - exercised in the smoke lane
    scenario_cases = None
