"""Tests for the batched Bianchi/backoff delay sampler."""

import numpy as np
import pytest

from repro.analytic.bianchi import BianchiModel
from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.sim.delay_model import (
    cbr_arrival_paths,
    sample_access_delays,
    sample_transient_delay_matrix,
)


class TestSteadySampler:
    def test_shape_and_positivity(self):
        sample = sample_access_delays(3, (40, 7), seed=1)
        assert sample.shape == (40, 7)
        assert np.all(sample > 0)

    def test_deterministic(self):
        one = sample_access_delays(4, (200,), seed=5)
        two = sample_access_delays(4, (200,), seed=5)
        assert np.array_equal(one, two)

    def test_mean_tracks_bianchi(self):
        """The sampled mean follows the fixed point's renewal mean.

        The sampler measures to the end of the DATA frame while
        Bianchi's renewal interval includes the trailing SIFS + ACK,
        so the ratio sits slightly below 1 at low contention.
        """
        for n in (1, 2, 5, 10):
            sample = sample_access_delays(n, (8000,), seed=2)
            expected = BianchiModel().solve(n).mean_access_delay
            assert float(sample.mean()) == pytest.approx(expected, rel=0.2)

    def test_delay_grows_with_contention(self):
        means = [float(sample_access_delays(n, (4000,), seed=3).mean())
                 for n in (1, 3, 8)]
        assert means[0] < means[1] < means[2]

    def test_minimum_is_one_data_airtime(self):
        airtime = AirtimeModel(PhyParams.dot11b())
        sample = sample_access_delays(2, (5000,), seed=4)
        floor = airtime.data_airtime(1500)
        assert float(sample.min()) >= floor - 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_access_delays(0, (10,))


class TestTransientSampler:
    def test_first_packet_accelerated(self):
        matrix = sample_transient_delay_matrix(3, 400, 15, seed=1)
        assert matrix.shape == (400, 15)
        assert matrix[:, 0].mean() < matrix[:, 5:].mean()

    def test_immediate_atom_present(self):
        airtime = AirtimeModel(PhyParams.dot11b())
        matrix = sample_transient_delay_matrix(3, 400, 5,
                                               utilization=0.3, seed=2)
        atom = np.isclose(matrix[:, 0], airtime.data_airtime(1500))
        # ~70% of first packets should hit the immediate-access atom.
        assert 0.5 < atom.mean() < 0.9

    def test_zero_utilization_first_packet_deterministic(self):
        airtime = AirtimeModel(PhyParams.dot11b())
        matrix = sample_transient_delay_matrix(2, 50, 4,
                                               utilization=0.0, seed=3)
        assert np.allclose(matrix[:, 0], airtime.data_airtime(1500))

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_transient_delay_matrix(2, 0, 5)
        with pytest.raises(ValueError):
            sample_transient_delay_matrix(2, 5, 1)
        with pytest.raises(ValueError):
            sample_transient_delay_matrix(2, 5, 5, utilization=1.0)


class TestCbrArrivalPaths:
    def test_deterministic_without_jitter(self):
        gens = [np.random.default_rng(s) for s in (1, 2, 3)]
        times, counts = cbr_arrival_paths(gens, 10.0, 1.0)
        # 10 packets/s over [0, 1): arrivals at 0, 0.1, ..., 0.9.
        assert np.all(counts == 10)
        expected = np.arange(10) * 0.1
        for row in range(3):
            assert np.allclose(times[row, :10], expected)

    def test_matches_cbr_generator_schedule(self):
        """The batched sampler replays CBRGenerator.generate exactly
        (jitter-free): same instants, same horizon clipping."""
        from repro.traffic.generators import CBRGenerator
        generator = CBRGenerator(9e6, 1500)
        schedule = generator.generate(0.5, np.random.default_rng(0))
        gens = [np.random.default_rng(0)]
        times, counts = cbr_arrival_paths(
            gens, generator.rate_bps / (1500 * 8), 0.5)
        assert counts[0] == len(schedule)
        assert np.allclose(times[0, :counts[0]], schedule.times)

    def test_jitter_spreads_per_repetition(self):
        gens = [np.random.default_rng(s) for s in (1, 2)]
        times, counts = cbr_arrival_paths(gens, 100.0, 1.0, jitter=5e-3)
        assert not np.allclose(times[0, :counts[0]],
                               times[1, :counts[1]])
        # Jittered rows stay sorted and inside the horizon.
        for row in range(2):
            real = times[row, :counts[row]]
            assert np.all(np.diff(real) >= 0)
            assert real[-1] < 1.0

    def test_degenerate_inputs(self):
        gens = [np.random.default_rng(0)]
        times, counts = cbr_arrival_paths(gens, 0.0, 1.0)
        assert counts[0] == 0 and np.isinf(times).all()
        with pytest.raises(ValueError):
            cbr_arrival_paths(gens, 10.0, 1.0, jitter=-1.0)
