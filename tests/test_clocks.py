"""Tests for the clock error models."""

import numpy as np
import pytest

from repro.testbed.clocks import ClockModel, ntp_synced_pair


class TestClockModel:
    def test_perfect_clock_identity(self, rng):
        clock = ClockModel()
        times = np.array([0.0, 1.0, 2.0])
        assert np.array_equal(clock.timestamps(times, rng), times)

    def test_offset(self, rng):
        clock = ClockModel(offset=0.5)
        assert clock.timestamp(1.0, rng) == pytest.approx(1.5)

    def test_drift(self, rng):
        clock = ClockModel(drift_ppm=100.0)
        assert clock.timestamp(1000.0, rng) == pytest.approx(1000.1)

    def test_jitter_statistics(self, rng):
        clock = ClockModel(jitter_std=10e-6)
        times = np.linspace(0, 100, 5000)  # well-separated events
        stamped = clock.timestamps(times, rng)
        errors = stamped - times
        assert np.std(errors) == pytest.approx(10e-6, rel=0.15)

    def test_jitter_output_monotone(self, rng):
        clock = ClockModel(jitter_std=1e-3)
        times = np.linspace(0, 0.01, 100)  # closer than the jitter
        stamped = clock.timestamps(times, rng)
        assert np.all(np.diff(stamped) >= 0)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            ClockModel(jitter_std=-1.0)

    def test_deterministic_without_jitter(self):
        clock = ClockModel(offset=0.1, drift_ppm=5.0)
        a = clock.timestamps(np.array([1.0]), np.random.default_rng(1))
        b = clock.timestamps(np.array([1.0]), np.random.default_rng(2))
        assert a == b


class TestNtpSyncedPair:
    def test_sender_is_reference(self, rng):
        sender, _ = ntp_synced_pair(rng)
        assert sender.offset == 0.0
        assert sender.drift_ppm == 0.0

    def test_receiver_offset_scale(self):
        offsets = []
        for seed in range(200):
            _, receiver = ntp_synced_pair(np.random.default_rng(seed))
            offsets.append(receiver.offset)
        assert np.std(offsets) == pytest.approx(10e-6, rel=0.25)

    def test_custom_error_budget(self, rng):
        _, receiver = ntp_synced_pair(rng, sync_error_std=1e-3,
                                      jitter_std=0.0)
        assert receiver.jitter_std == 0.0

    def test_negative_budget_rejected(self, rng):
        with pytest.raises(ValueError):
            ntp_synced_pair(rng, sync_error_std=-1.0)

    def test_dispersion_immune_to_offset(self, rng):
        """The core property the paper relies on: output gaps are
        unaffected by the (constant) clock offset."""
        _, receiver = ntp_synced_pair(rng, jitter_std=0.0, drift_ppm=0.0)
        departures = np.array([1.0, 1.002, 1.004])
        stamped = receiver.timestamps(departures, rng)
        assert np.allclose(np.diff(stamped), np.diff(departures))
