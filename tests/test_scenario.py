"""Tests for scenario building and result accounting."""

import numpy as np
import pytest

from repro.mac.scenario import StationSpec, WlanScenario
from repro.traffic.generators import CBRGenerator, PoissonGenerator
from repro.traffic.probe import ProbeTrain


class TestScenarioRun:
    def test_duplicate_names_rejected(self, scenario):
        specs = [StationSpec("a"), StationSpec("a")]
        with pytest.raises(ValueError):
            scenario.run(specs, horizon=0.1)

    def test_bad_horizon_rejected(self, scenario):
        with pytest.raises(ValueError):
            scenario.run([StationSpec("a")], horizon=0.0)

    def test_silent_station_allowed(self, scenario):
        result = scenario.run([StationSpec("idle")], horizon=0.1)
        assert result.station("idle").records == []

    def test_reproducible_with_seed(self, scenario):
        specs = [StationSpec("a", generator=PoissonGenerator(2e6, 1500))]
        r1 = scenario.run(specs, horizon=0.5, seed=42)
        r2 = scenario.run(specs, horizon=0.5, seed=42)
        d1 = [r.departure for r in r1.station("a").completed()]
        d2 = [r.departure for r in r2.station("a").completed()]
        assert d1 == d2

    def test_different_seeds_differ(self, scenario):
        specs = [StationSpec("a", generator=PoissonGenerator(2e6, 1500))]
        r1 = scenario.run(specs, horizon=0.5, seed=1)
        r2 = scenario.run(specs, horizon=0.5, seed=2)
        d1 = [r.departure for r in r1.station("a").completed()]
        d2 = [r.departure for r in r2.station("a").completed()]
        assert d1 != d2

    def test_until_caps_simulation(self, scenario):
        specs = [StationSpec("a", generator=CBRGenerator(8e6, 1500))]
        result = scenario.run(specs, horizon=1.0, until=0.5)
        assert result.duration == pytest.approx(0.5)

    def test_runs_to_drain_by_default(self, scenario):
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500))]
        result = scenario.run(specs, horizon=0.5)
        # Offered 9 Mb/s > C ~ 6.2: draining takes longer than the horizon.
        assert result.duration > 0.5
        records = result.station("a").records
        assert all(r.completed for r in records)

    def test_arrivals_and_generator_merge(self, scenario):
        train = ProbeTrain.at_rate(5, 2e6)
        specs = [StationSpec(
            "probe", generator=PoissonGenerator(1e6, 1500, flow="fifo"),
            arrivals=train.packets(start=0.1))]
        result = scenario.run(specs, horizon=0.5, seed=3)
        station = result.station("probe")
        assert len(station.completed("probe")) == 5
        assert len(station.completed("fifo")) > 0

    def test_collision_rate_zero_single_station(self, scenario):
        specs = [StationSpec("a", generator=CBRGenerator(3e6, 1500))]
        result = scenario.run(specs, horizon=0.5)
        assert result.collision_rate == 0.0

    def test_events_processed_positive(self, probe_vs_poisson_result):
        assert probe_vs_poisson_result.events_processed > 0


class TestStationResult:
    def test_throughput_window_validation(self, probe_vs_poisson_result):
        with pytest.raises(ValueError):
            probe_vs_poisson_result.station("probe").throughput_bps(1.0, 1.0)

    def test_probe_throughput_matches_offered(self, probe_vs_poisson_result):
        # 2 Mb/s probe against 3 Mb/s cross: both under the fair share.
        throughput = probe_vs_poisson_result.station("probe") \
            .throughput_bps(0.5, 1.5, flow="probe")
        assert throughput == pytest.approx(2e6, rel=0.15)

    def test_flow_filter(self, probe_vs_poisson_result):
        station = probe_vs_poisson_result.station("probe")
        assert station.throughput_bps(0.5, 1.5, flow="nonexistent") == 0.0

    def test_access_delays_positive(self, probe_vs_poisson_result):
        delays = probe_vs_poisson_result.station("cross").access_delays()
        assert np.all(delays > 0)

    def test_departures_sorted(self, probe_vs_poisson_result):
        departures = probe_vs_poisson_result.station("cross").departures()
        assert np.all(np.diff(departures) > 0)

    def test_queue_log_disabled_by_default(self, probe_vs_poisson_result):
        with pytest.raises(ValueError):
            probe_vs_poisson_result.station("cross").queue_size_at(
                np.array([0.5]))


class TestQueueLogging:
    def test_queue_log_sampling(self, scenario):
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500),
                             log_queue=True)]
        result = scenario.run(specs, horizon=0.5, until=0.6)
        station = result.station("a")
        sizes = station.queue_size_at(np.array([-0.01, 0.25, 0.5]))
        assert sizes[0] == 0.0          # before any arrival
        assert sizes[1] > 0.0           # saturated: queue built up
        # Offered 9 > C ~ 6.2 Mb/s: backlog grows over time.
        assert sizes[2] >= sizes[1]

    def test_queue_log_times_monotone(self, scenario):
        specs = [StationSpec("a", generator=PoissonGenerator(4e6, 1500),
                             log_queue=True)]
        result = scenario.run(specs, horizon=0.3)
        times = [t for t, _ in result.station("a").queue_log]
        assert times == sorted(times)

    def test_queue_log_values_nonnegative(self, scenario):
        specs = [StationSpec("a", generator=PoissonGenerator(4e6, 1500),
                             log_queue=True)]
        result = scenario.run(specs, horizon=0.3)
        assert all(q >= 0 for _, q in result.station("a").queue_log)


class TestCalibrationAgainstBianchi:
    """The simulator must track the analytical model (DESIGN ablation)."""

    def test_single_station_capacity(self, scenario):
        from repro.analytic.bianchi import BianchiModel
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500))]
        result = scenario.run(specs, horizon=3.0, until=3.0, seed=10)
        measured = result.station("a").throughput_bps(0.5, 3.0)
        predicted = BianchiModel().capacity()
        assert measured == pytest.approx(predicted, rel=0.05)

    def test_two_station_fair_share(self, scenario):
        from repro.analytic.bianchi import BianchiModel
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500)),
                 StationSpec("b", generator=CBRGenerator(9e6, 1500))]
        result = scenario.run(specs, horizon=3.0, until=3.0, seed=11)
        measured = result.station("a").throughput_bps(0.5, 3.0)
        predicted = BianchiModel().fair_share(2)
        assert measured == pytest.approx(predicted, rel=0.1)

    def test_collision_fraction_matches(self, scenario):
        from repro.analytic.bianchi import BianchiModel
        specs = [StationSpec("a", generator=CBRGenerator(9e6, 1500)),
                 StationSpec("b", generator=CBRGenerator(9e6, 1500))]
        result = scenario.run(specs, horizon=3.0, until=3.0, seed=12)
        predicted = BianchiModel().collision_fraction(2)
        assert result.collision_rate == pytest.approx(predicted, rel=0.4)
