"""Tests for the transient-state analysis tools."""

import numpy as np
import pytest

from repro.core.transient import (
    DelayMatrix,
    ks_profile,
    transient_duration,
)


def synthetic_matrix(reps=200, n=60, transient_len=10, seed=0):
    """Delays ramping from 1 ms to 3 ms over ``transient_len`` packets."""
    rng = np.random.default_rng(seed)
    ramp = np.concatenate([
        np.linspace(1e-3, 3e-3, transient_len),
        np.full(n - transient_len, 3e-3),
    ])
    noise = rng.exponential(0.3e-3, size=(reps, n))
    return DelayMatrix(ramp[None, :] + noise)


class TestDelayMatrix:
    def test_shape_properties(self):
        matrix = synthetic_matrix(reps=50, n=30)
        assert matrix.repetitions == 50
        assert matrix.n_packets == 30

    def test_mean_profile_increasing_early(self):
        matrix = synthetic_matrix()
        profile = matrix.mean_profile()
        assert profile[0] < profile[9] < profile[-1] * 1.1

    def test_index_sample(self):
        matrix = synthetic_matrix(reps=40)
        assert len(matrix.index_sample(0)) == 40

    def test_steady_state_sample_default_tail(self):
        matrix = synthetic_matrix(reps=10, n=20)
        assert len(matrix.steady_state_sample()) == 10 * 10

    def test_steady_state_mean(self):
        matrix = synthetic_matrix()
        assert matrix.steady_state_mean() == pytest.approx(3.3e-3, rel=0.1)

    def test_tail_start_validation(self):
        matrix = synthetic_matrix(reps=5, n=10)
        with pytest.raises(ValueError):
            matrix.steady_state_sample(0)
        with pytest.raises(ValueError):
            matrix.steady_state_sample(10)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            DelayMatrix(np.ones(5))
        with pytest.raises(ValueError):
            DelayMatrix(np.ones((3, 1)))

    def test_rejects_nonpositive_delays(self):
        with pytest.raises(ValueError):
            DelayMatrix(np.zeros((2, 3)))


class TestKsProfile:
    def test_transient_detected(self):
        matrix = synthetic_matrix(reps=400)
        profile = ks_profile(matrix)
        assert profile.ks_values[0] > profile.threshold
        assert profile.settled_index > 0

    def test_settles_for_stationary_tail(self):
        matrix = synthetic_matrix(reps=400)
        profile = ks_profile(matrix)
        assert profile.settled_index < matrix.n_packets // 2

    def test_max_index_limits_output(self):
        matrix = synthetic_matrix()
        profile = ks_profile(matrix, max_index=7)
        assert len(profile.ks_values) == 7

    def test_interpolated_method(self):
        matrix = synthetic_matrix(reps=300)
        plain = ks_profile(matrix, method="plain")
        interp = ks_profile(matrix, method="interpolated")
        # Both must flag the first index for a continuous distribution.
        assert plain.ks_values[0] > plain.threshold
        assert interp.ks_values[0] > interp.threshold

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ks_profile(synthetic_matrix(), method="fancy")

    def test_never_settles_reports_length(self):
        rng = np.random.default_rng(0)
        # Delays keep drifting: each index is a different distribution.
        drift = np.linspace(1e-3, 50e-3, 40)
        delays = drift[None, :] + rng.exponential(1e-4, size=(300, 40))
        profile = ks_profile(DelayMatrix(delays))
        assert profile.settled_index == len(profile.ks_values)


class TestTransientDuration:
    def test_detects_ramp_length(self):
        profile = np.concatenate([np.linspace(1.0, 3.0, 10),
                                  np.full(50, 3.0)])
        duration = transient_duration(profile, tolerance=0.05)
        assert duration.settled
        assert 8 <= duration.n_packets <= 11

    def test_tighter_tolerance_longer_duration(self):
        profile = np.concatenate([np.linspace(1.0, 3.0, 20),
                                  np.full(100, 3.0)])
        loose = transient_duration(profile, tolerance=0.2)
        tight = transient_duration(profile, tolerance=0.01)
        assert tight.n_packets >= loose.n_packets

    def test_flat_profile_instant(self):
        duration = transient_duration(np.full(20, 2.0), tolerance=0.1)
        assert duration.n_packets == 1

    def test_first_hit_vs_sustained(self):
        # Dips into tolerance at index 2 then leaves again.
        profile = np.array([1.0, 1.2, 2.95, 1.0, 1.1]
                           + [3.0] * 20)
        first_hit = transient_duration(profile, 0.05, steady_mean=3.0,
                                       sustained=False)
        sustained = transient_duration(profile, 0.05, steady_mean=3.0,
                                       sustained=True)
        assert first_hit.n_packets == 3
        assert sustained.n_packets == 6

    def test_never_settles(self):
        profile = np.linspace(1.0, 2.0, 30)
        duration = transient_duration(profile, tolerance=0.001,
                                      steady_mean=100.0)
        assert not duration.settled
        assert duration.n_packets == 30

    def test_explicit_steady_mean(self):
        profile = np.full(10, 2.0)
        duration = transient_duration(profile, 0.1, steady_mean=2.0)
        assert duration.n_packets == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            transient_duration(np.array([1.0, 2.0]), 0.1)
        with pytest.raises(ValueError):
            transient_duration(np.full(10, 1.0), -0.1)
        with pytest.raises(ValueError):
            transient_duration(np.full(10, 1.0), 0.1, steady_mean=0.0)

    def test_str(self):
        duration = transient_duration(np.full(10, 2.0), 0.1)
        assert "transient" in str(duration)
