"""Property-based fuzzing of the DCF simulator.

Random station counts, packet sizes, arrival patterns and seeds; the
protocol invariants must hold on every generated scenario:

* conservation — with no retry limit every packet departs exactly once;
* per-station FIFO — departures follow arrivals in order, and the HOL
  instant obeys the Lindley recursion;
* medium exclusivity — successful DATA frames never overlap on air;
* access-delay floor — no packet beats its own airtime (plus the RTS
  handshake when protected);
* determinism — identical seeds give identical sample paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.frames import AirtimeModel
from repro.mac.params import PhyParams
from repro.mac.scenario import StationSpec, WlanScenario
from repro.traffic.packets import Packet

PHY = PhyParams.dot11b()
AIRTIME = AirtimeModel(PHY)


def random_scenario(n_stations, packets_per_station, size_choices, span,
                    seed, retry_limit=None, rts_threshold=None):
    rng = np.random.default_rng(seed)
    specs = []
    for i in range(n_stations):
        times = np.sort(rng.uniform(0.0, span, packets_per_station))
        sizes = rng.choice(size_choices, packets_per_station)
        arrivals = [(float(t), Packet(int(s)))
                    for t, s in zip(times, sizes)]
        specs.append(StationSpec(f"s{i}", arrivals=arrivals))
    scenario = WlanScenario(PHY, retry_limit=retry_limit,
                            rts_threshold=rts_threshold)
    return scenario.run(specs, horizon=span + 0.01, seed=seed)


scenario_params = dict(
    n_stations=st.integers(min_value=1, max_value=4),
    packets_per_station=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=2 ** 31),
)


class TestDcfInvariants:
    @settings(max_examples=20, deadline=None)
    @given(**scenario_params)
    def test_conservation(self, n_stations, packets_per_station, seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [40, 576, 1500], 0.2, seed)
        for i in range(n_stations):
            records = result.station(f"s{i}").records
            assert len(records) == packets_per_station
            assert all(r.completed for r in records)

    @settings(max_examples=20, deadline=None)
    @given(**scenario_params)
    def test_per_station_fifo_and_lindley(self, n_stations,
                                          packets_per_station, seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [1500], 0.15, seed)
        for i in range(n_stations):
            records = result.station(f"s{i}").records
            previous_departure = -np.inf
            for record in records:
                assert record.hol == pytest.approx(
                    max(record.arrival, previous_departure))
                assert record.departure > record.hol
                previous_departure = record.departure

    @settings(max_examples=20, deadline=None)
    @given(**scenario_params)
    def test_medium_exclusivity(self, n_stations, packets_per_station,
                                seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [40, 1500], 0.15, seed)
        intervals = []
        for i in range(n_stations):
            for record in result.station(f"s{i}").completed():
                airtime = AIRTIME.data_airtime(record.packet.size_bytes)
                intervals.append((record.departure - airtime,
                                  record.departure))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9

    @settings(max_examples=20, deadline=None)
    @given(**scenario_params)
    def test_access_delay_floor(self, n_stations, packets_per_station,
                                seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [40, 576, 1500], 0.15, seed)
        for i in range(n_stations):
            for record in result.station(f"s{i}").completed():
                floor = AIRTIME.data_airtime(record.packet.size_bytes)
                assert record.access_delay >= floor - 1e-12

    @settings(max_examples=10, deadline=None)
    @given(**scenario_params)
    def test_determinism(self, n_stations, packets_per_station, seed):
        a = random_scenario(n_stations, packets_per_station, [1500],
                            0.1, seed)
        b = random_scenario(n_stations, packets_per_station, [1500],
                            0.1, seed)
        for i in range(n_stations):
            da = [r.departure for r in a.station(f"s{i}").records]
            db = [r.departure for r in b.station(f"s{i}").records]
            assert da == db

    @settings(max_examples=12, deadline=None)
    @given(n_stations=st.integers(min_value=2, max_value=4),
           packets_per_station=st.integers(min_value=2, max_value=15),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_rts_conservation(self, n_stations, packets_per_station, seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [576, 1500], 0.15, seed,
                                 rts_threshold=500)
        for i in range(n_stations):
            records = result.station(f"s{i}").records
            assert all(r.completed for r in records)
            for record in records:
                floor = (AIRTIME.data_airtime(record.packet.size_bytes)
                         + AIRTIME.rts_preamble_duration())
                assert record.access_delay >= floor - 1e-12

    @settings(max_examples=12, deadline=None)
    @given(n_stations=st.integers(min_value=2, max_value=4),
           packets_per_station=st.integers(min_value=2, max_value=10),
           seed=st.integers(min_value=0, max_value=2 ** 31))
    def test_retry_limit_drops_are_flagged(self, n_stations,
                                           packets_per_station, seed):
        result = random_scenario(n_stations, packets_per_station,
                                 [1500], 0.02, seed, retry_limit=0)
        for i in range(n_stations):
            for record in result.station(f"s{i}").records:
                # Every record either completed or is a flagged drop.
                assert record.completed or record.dropped
