"""Setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 660 editable installs fail; this classic setup.py lets
``pip install -e . --no-build-isolation --no-use-pep517`` (or plain
``pip install -e .`` on modern toolchains) work everywhere.
"""

from setuptools import setup

setup()
