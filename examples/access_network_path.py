#!/usr/bin/env python
"""Probing an end-to-end path whose last mile is a WLAN.

The common broadband-access layout (the paper's reference [3] studied
exactly this): a fast wired backbone feeding a contended 802.11 access
link.  Every end-to-end tool — packet pairs, rate scans, TOPP, chirps —
sees the wireless hop's *achievable throughput*, not any hop's
capacity, and the short-train biases of the paper apply end-to-end.

Run:  python examples/access_network_path.py
"""

import numpy as np

from repro.analytic.bianchi import BianchiModel
from repro.core.chirp import ChirpTrain, chirp_estimate
from repro.core.topp import topp_from_prober
from repro.path import NetworkPath, SimulatedPathChannel, WiredHop, WlanHop
from repro.testbed import Prober, ProbeSessionConfig
from repro.traffic import PoissonGenerator


def main() -> None:
    neighbour_rate = 4e6
    path = NetworkPath([
        WiredHop(100e6, prop_delay=2e-3,
                 cross_generator=PoissonGenerator(20e6, 1500)),
        WlanHop([("neighbour", PoissonGenerator(neighbour_rate, 1500))],
                prop_delay=0.5e-3),
    ])
    bianchi = BianchiModel()
    wlan_c = bianchi.capacity()
    wlan_b = bianchi.fair_share(2)
    print("Path: 100 Mb/s wired backbone (20 Mb/s cross) -> 802.11b "
          f"last mile ({neighbour_rate / 1e6:.0f} Mb/s neighbour)")
    print(f"  wired capacity 100 Mb/s | WLAN capacity "
          f"{wlan_c / 1e6:.2f} Mb/s | WLAN fair share "
          f"{wlan_b / 1e6:.2f} Mb/s\n")

    prober = Prober(SimulatedPathChannel(path),
                    ProbeSessionConfig(repetitions=15, ideal_clocks=True))

    # Packet pair, end to end.
    pair = prober.packet_pair_estimate(repetitions=150, seed=1)
    print(f"packet pair (end-to-end):   {pair / 1e6:5.2f} Mb/s "
          "(neither 100 nor 6.2: it tracks the WLAN hop's B, high)")

    # Rate scan.
    rates = np.arange(1e6, 6.01e6, 1e6)
    curve = prober.rate_scan(rates, n=50, seed=2)
    print("\nrate scan (50-packet trains):")
    for ri, ro in zip(curve.input_rates, curve.output_rates):
        print(f"  ri {ri / 1e6:4.1f} -> L/E[gO] {ro / 1e6:5.2f} Mb/s")
    print(f"  knee: {curve.knee_rate(tolerance=0.08) / 1e6:.1f} Mb/s "
          f"(WLAN B is {wlan_b / 1e6:.2f})")

    # TOPP regression over the loaded segment.
    topp = topp_from_prober(prober, np.arange(2.5e6, 9.01e6, 0.75e6),
                            n=150, seed=3)
    print(f"\nTOPP 'capacity' estimate:   {topp.capacity_bps / 1e6:5.2f} "
          "Mb/s  <- the WLAN achievable throughput, not any capacity")

    # A chirp sweep.
    chirp = ChirpTrain.covering_rates(1e6, 10e6, spread_factor=1.3)
    chirp_b = chirp_estimate(prober.measure_chirps(chirp, repetitions=40,
                                                   seed=4), chirp)
    print(f"chirp turning point:        {chirp_b / 1e6:5.2f} Mb/s "
          "(few packets per rate: most exposed to the transient bias)")


if __name__ == "__main__":
    main()
