#!/usr/bin/env python
"""Wired FIFO link vs. CSMA/CA link, side by side (paper sections 2-3).

The same probing procedure is pointed first at a wired FIFO hop
(equation (1)'s world — where available-bandwidth tools were designed)
and then at a CSMA/CA link with the same nominal numbers.  The output
shows why tools carried over unchanged "measure" something different:

* wired: the knee of the rate response sits at the available bandwidth
  A, and packet pairs report the capacity C;
* wireless: the knee sits at the achievable throughput B > or != A,
  and packet pairs report (an overestimate of) B.

Run:  python examples/wired_vs_wireless.py
"""

import numpy as np

from repro.analytic.bianchi import BianchiModel
from repro.testbed import (
    Prober,
    ProbeSessionConfig,
    SimulatedFifoChannel,
    SimulatedWlanChannel,
)
from repro.traffic import PoissonGenerator


def scan(prober, rates, n=80, repetitions=12, seed=1):
    curve = prober.rate_scan(rates, n=n, repetitions=repetitions, seed=seed)
    return curve


def report(name, curve, pair_estimate, capacity, available):
    print(f"\n{name}")
    print(f"  {'ri (Mb/s)':>10} {'L/E[gO] (Mb/s)':>15}")
    for ri, ro in zip(curve.input_rates, curve.output_rates):
        marker = "  <- knee region" if abs(ro - ri) > 0.07 * ri else ""
        print(f"  {ri / 1e6:10.1f} {ro / 1e6:15.2f}{marker}")
    knee = curve.knee_rate(tolerance=0.07)
    print(f"  first deviation from the diagonal: {knee / 1e6:.1f} Mb/s")
    print(f"  packet-pair estimate: {pair_estimate / 1e6:.2f} Mb/s "
          f"(C = {capacity / 1e6:.2f}, A = {available / 1e6:.2f})")


def main() -> None:
    size = 1500
    cross_rate = 4.0e6
    rates = np.arange(1e6, 7.01e6, 0.75e6)

    # ---- wired FIFO hop: C = 10 Mb/s, A = 6 Mb/s ---------------------
    capacity_wired = 10e6
    fifo = Prober(
        SimulatedFifoChannel(capacity_wired,
                             cross_generator=PoissonGenerator(cross_rate,
                                                              size)),
        ProbeSessionConfig(size_bytes=size, repetitions=12,
                           ideal_clocks=True))
    curve = scan(fifo, rates)
    pair = fifo.packet_pair_estimate(repetitions=60, seed=2)
    report("Wired FIFO hop (the world of equation (1))", curve, pair,
           capacity_wired, capacity_wired - cross_rate)

    # ---- CSMA/CA link: same cross-traffic, DCF contention ------------
    bianchi = BianchiModel(size_bytes=size)
    capacity_wlan = bianchi.capacity()
    wlan = Prober(
        SimulatedWlanChannel([("cross", PoissonGenerator(cross_rate,
                                                         size))]),
        ProbeSessionConfig(size_bytes=size, repetitions=12,
                           ideal_clocks=True))
    curve = scan(wlan, rates)
    pair = wlan.packet_pair_estimate(repetitions=60, seed=3)
    report("CSMA/CA link (802.11 DCF)", curve, pair,
           capacity_wlan, capacity_wlan - cross_rate)
    print(f"  fair share (Bianchi): {bianchi.fair_share(2) / 1e6:.2f} "
          "Mb/s — that is where the wireless knee lives")


if __name__ == "__main__":
    main()
