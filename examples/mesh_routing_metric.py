#!/usr/bin/env python
"""Packet-pair routing metrics in wireless mesh networks (section 7.3).

The wireless-mesh routing literature (e.g. WCETT) uses packet-pair
dispersion to weigh links.  The paper warns that on CSMA/CA links the
pair measures (an overestimate of) the *achievable throughput*, which
moves with the neighbours' load — not the capacity.  This example
quantifies the routing consequence: two links with identical capacity
but different contention look vastly different to a pair-based metric,
and the "best" link flips as cross-traffic changes.

Run:  python examples/mesh_routing_metric.py
"""

import numpy as np

from repro.analytic.bianchi import BianchiModel
from repro.analytic.metrics import fluid_achievable_throughput
from repro.testbed import Prober, ProbeSessionConfig, SimulatedWlanChannel
from repro.traffic import PoissonGenerator


def pair_metric(cross_rate_bps: float, repetitions: int = 200,
                seed: int = 0) -> float:
    """What a packet-pair-based routing metric sees on one link."""
    cross = ([("neighbour", PoissonGenerator(cross_rate_bps, 1500))]
             if cross_rate_bps > 0 else [])
    prober = Prober(SimulatedWlanChannel(cross),
                    ProbeSessionConfig(repetitions=repetitions,
                                       ideal_clocks=True))
    return prober.packet_pair_estimate(seed=seed)


def main() -> None:
    bianchi = BianchiModel()
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    print("Two mesh links, identical PHY and capacity "
          f"({capacity / 1e6:.2f} Mb/s), different neighbourhood load.\n")

    loads = [(0.0, 3.5e6), (1.0e6, 2.0e6), (3.0e6, 0.5e6)]
    print(f"{'link-A cross':>13} {'link-B cross':>13} "
          f"{'pair(A)':>9} {'pair(B)':>9} {'chosen':>7} "
          f"{'actual B(A)':>12} {'actual B(B)':>12} {'right?':>7}")
    for k, (cross_a, cross_b) in enumerate(loads):
        pair_a = pair_metric(cross_a, seed=10 + k)
        pair_b = pair_metric(cross_b, seed=20 + k)
        actual_a = fluid_achievable_throughput(capacity, cross_a, fair_share)
        actual_b = fluid_achievable_throughput(capacity, cross_b, fair_share)
        chosen = "A" if pair_a >= pair_b else "B"
        correct = "A" if actual_a >= actual_b else "B"
        print(f"{cross_a / 1e6:10.1f} Mb {cross_b / 1e6:10.1f} Mb "
              f"{pair_a / 1e6:8.2f} {pair_b / 1e6:8.2f} {chosen:>7} "
              f"{actual_a / 1e6:11.2f} {actual_b / 1e6:11.2f} "
              f"{'yes' if chosen == correct else 'NO':>7}")

    print("\nTakeaways:")
    print("  * the pair never reports the (identical) capacity once a")
    print("    neighbour is active - it tracks the achievable throughput;")
    print("  * it consistently OVERestimates it (transient acceleration),")
    print("    so absolute link weights are optimistic;")
    print("  * rankings usually survive, but the margin between links is")
    print("    distorted - exactly the bias the paper derives in sec. 6.")


if __name__ == "__main__":
    main()
