#!/usr/bin/env python
"""Anatomy of the access-delay transient (paper sections 4 and 7.4).

Repeats a probing train many times against contending cross-traffic,
then prints:

* the per-index mean access delay (figure 6's curve) as ASCII art;
* the KS-vs-steady-state profile with its 95% threshold (figure 8);
* the tolerance-based transient duration (figure 10's estimator);
* where MSER-2 would truncate — compared with the measured transient;
* what the Bianchi/backoff *sampler* predicts for the same shape,
  without running any simulation at all.

The repetition batch runs on the vectorized probe-train backend
(``repro.sim.probe_vector``) — pass ``--event`` to use the
per-repetition event engine instead and compare wall-clocks.

Run:  python examples/transient_anatomy.py
"""

import sys
import time

import numpy as np

from repro.analysis.transient import collect_delay_matrix
from repro.core.correction import mser_truncation_index
from repro.core.dispersion import TrainMeasurement
from repro.core.transient import ks_profile, transient_duration
from repro.sim.delay_model import sample_transient_delay_matrix
from repro.testbed import SimulatedWlanChannel
from repro.traffic import PoissonGenerator, ProbeTrain


def ascii_series(values, width=50, label_fn=None):
    lo, hi = float(np.min(values)), float(np.max(values))
    span = hi - lo or 1.0
    lines = []
    for i, v in enumerate(values):
        bar = "#" * (1 + int((v - lo) / span * (width - 1)))
        label = label_fn(i, v) if label_fn else f"{v:.4g}"
        lines.append(f"  {i + 1:4d} {bar:<{width}} {label}")
    return "\n".join(lines)


def main() -> None:
    probe_rate = 5e6
    cross_rate = 4e6
    n_packets, repetitions = 120, 250
    backend = "event" if "--event" in sys.argv[1:] else "vector"
    print(f"Probing at {probe_rate / 1e6:.0f} Mb/s against "
          f"{cross_rate / 1e6:.0f} Mb/s Poisson cross-traffic, "
          f"{repetitions} repetitions of {n_packets}-packet trains "
          f"({backend} backend)...")

    start = time.perf_counter()
    collection = collect_delay_matrix(
        probe_rate, [("cross", PoissonGenerator(cross_rate, 1500))],
        n_packets=n_packets, repetitions=repetitions, seed=7,
        backend=backend)
    print(f"  ...{repetitions * n_packets} probe packets simulated in "
          f"{time.perf_counter() - start:.2f}s")
    matrix = collection.matrix
    profile = matrix.mean_profile()
    steady = matrix.steady_state_mean()

    print("\nMean access delay per packet index (first 30; figure 6):")
    print(ascii_series(profile[:30] * 1e3, width=40,
                       label_fn=lambda i, v: f"{v:.2f} ms"))
    print(f"  steady-state mean: {steady * 1e3:.2f} ms "
          f"(first packet: {profile[0] * 1e3:.2f} ms — accelerated)")

    ks = ks_profile(matrix, max_index=30)
    print("\nKS distance to the steady-state distribution (figure 8):")
    print(ascii_series(ks.ks_values, width=40,
                       label_fn=lambda i, v: f"{v:.3f}"))
    print(f"  95% threshold: {ks.threshold:.3f}; "
          f"settles at packet {ks.settled_index + 1}")

    for tol in (0.1, 0.01):
        duration = transient_duration(profile, tolerance=tol,
                                      steady_mean=steady, sustained=False)
        print(f"\nTransient duration at tolerance {tol}: "
              f"{duration.n_packets} packets (figure 10's estimator)")

    # Where would MSER-2 cut?  Re-use the same trains as dispersion data.
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate, 1500))])
    train = ProbeTrain.at_rate(20, 8e6)
    raws = channel.send_trains(train, 80, seed=11)
    measurements = [TrainMeasurement(r.send_times, r.recv_times,
                                     r.size_bytes) for r in raws]
    cut = mser_truncation_index(measurements, m=2)
    print(f"\nMSER-2 on 20-packet trains at 8 Mb/s truncates the first "
          f"{cut} dispersion samples\n(the transient it removes is "
          "exactly the acceleration shown above).")

    # The same qualitative shape, sampled straight from the
    # Bianchi/backoff model — no simulation, just the fixed point.
    model = sample_transient_delay_matrix(2, repetitions, n_packets,
                                          utilization=0.6, seed=7)
    model_profile = model.mean(axis=0)
    model_steady = float(model[:, n_packets // 2:].mean())
    print("\nBianchi/backoff sampler prediction (no simulation): "
          f"first packet {model_profile[0] * 1e3:.2f} ms vs steady "
          f"{model_steady * 1e3:.2f} ms — same accelerated-first-packet "
          "signature.")


if __name__ == "__main__":
    main()
