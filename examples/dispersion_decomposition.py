#!/usr/bin/env python
"""Decomposing the output dispersion (paper section 5).

The paper's analytical framework expresses the output gap of a probing
train as (equation (18))::

    gO = gI + R_n/(n-1) + (W(a_n) - W(a_1))/(n-1) + (mu_n - mu_1)/(n-1)

This example measures a train on the DCF simulator, rebuilds every term
from the sample path (intrusion residual via the recursion of equation
(14), access delays from the MAC records) and shows the identity
holding to numerical precision — then uses the trace-driven queueing
simulator (the paper's "Matlab" tool) to replay the same arrivals
against a *steady-state* service process, isolating how much of the
dispersion error is due to the transient alone.

Run:  python examples/dispersion_decomposition.py
"""

import numpy as np

from repro.queueing.trace import TraceDrivenQueue
from repro.queueing.workload import intrusion_residual_recursive
from repro.testbed import SimulatedWlanChannel
from repro.traffic import PoissonGenerator, ProbeTrain


def main() -> None:
    cross_rate = 3e6
    train = ProbeTrain.at_rate(12, 6e6)
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate, 1500))],
        start_jitter=0.0)

    raw = channel.send_train(train, seed=5)
    n = train.n
    mu = raw.access_delays
    measured_go = (raw.recv_times[-1] - raw.recv_times[0]) / (n - 1)

    residual = intrusion_residual_recursive(mu, train.gap)
    reconstructed = (train.gap
                     + residual[-1] / (n - 1)
                     + (mu[-1] - mu[0]) / (n - 1))

    print(f"One {n}-packet train at {train.rate_bps / 1e6:.0f} Mb/s "
          f"against {cross_rate / 1e6:.0f} Mb/s contending cross-traffic\n")
    print(f"{'i':>3} {'mu_i (ms)':>10} {'R_i (ms)':>10}")
    for i in range(n):
        print(f"{i + 1:3d} {mu[i] * 1e3:10.3f} {residual[i] * 1e3:10.3f}")
    print(f"\nmeasured gO      = {measured_go * 1e3:.4f} ms")
    print(f"eq (18) rebuild  = {reconstructed * 1e3:.4f} ms "
          f"(difference {abs(measured_go - reconstructed):.2e} s)")

    # Replay through the trace-driven queue with steady-state services:
    # what gO would look like with no transient.
    reps = 300
    raws = channel.send_trains(train, reps, seed=77)
    mu_matrix = np.vstack([r.access_delays for r in raws])
    steady_pool = mu_matrix[:, n // 2:].ravel()

    rng = np.random.default_rng(3)
    queue = TraceDrivenQueue(lambda i, r: float(r.choice(steady_pool)))
    steady_gos = []
    for _ in range(reps):
        steady_gos.append(queue.run(train.arrival_times(), rng=rng).output_gap)
    transient_gos = [(r.recv_times[-1] - r.recv_times[0]) / (n - 1)
                     for r in raws]

    mean_transient = float(np.mean(transient_gos))
    mean_steady = float(np.mean(steady_gos))
    print(f"\nacross {reps} repetitions:")
    print(f"  mean gO with the real (transient) access delays: "
          f"{mean_transient * 1e3:.3f} ms -> L/E[gO] = "
          f"{1500 * 8 / mean_transient / 1e6:.2f} Mb/s")
    print(f"  mean gO replayed with steady-state services:     "
          f"{mean_steady * 1e3:.3f} ms -> L/E[gO] = "
          f"{1500 * 8 / mean_steady / 1e6:.2f} Mb/s")
    print("  the gap between the two lines IS the transient bias the "
          "paper bounds in section 6.")


if __name__ == "__main__":
    main()
