#!/usr/bin/env python
"""Quickstart: measure a CSMA/CA link the way the paper does.

Builds a simulated 802.11b link with one contending cross-traffic
station, points the prober at it, and walks through the paper's three
headline observations:

1. the rate-response curve flattens at the *achievable throughput* B,
   not at the available bandwidth A;
2. packet pairs do not measure the capacity once contention exists;
3. short trains overestimate B — and MSER-2 truncation fixes most of it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analytic.bianchi import BianchiModel
from repro.testbed import Prober, ProbeSessionConfig, SimulatedWlanChannel
from repro.traffic import PoissonGenerator


def main() -> None:
    size_bytes = 1500
    cross_rate = 4.0e6  # contending Poisson cross-traffic, bit/s

    # Analytical reference points (Bianchi's DCF model).
    bianchi = BianchiModel(size_bytes=size_bytes)
    capacity = bianchi.capacity()
    fair_share = bianchi.fair_share(2)
    available = capacity - cross_rate
    print("Link under test (802.11b, 11 Mb/s PHY, 1500 B packets)")
    print(f"  capacity C            ~ {capacity / 1e6:5.2f} Mb/s")
    print(f"  available bandwidth A ~ {available / 1e6:5.2f} Mb/s")
    print(f"  fair share / achievable throughput B ~ "
          f"{fair_share / 1e6:5.2f} Mb/s")

    # The channel is the simulated testbed; a live deployment would
    # bind the same Prober to a scapy-backed channel instead.
    channel = SimulatedWlanChannel(
        [("cross", PoissonGenerator(cross_rate, size_bytes))])
    prober = Prober(channel, ProbeSessionConfig(size_bytes=size_bytes,
                                                repetitions=40))

    # 1. Rate scan with long-ish trains: the knee is at B, not A.
    rates = np.arange(1e6, 6.01e6, 1e6)
    curve = prober.rate_scan(rates, n=60, repetitions=15, seed=1)
    print("\nRate response (60-packet trains):")
    for ri, ro in zip(curve.input_rates, curve.output_rates):
        bar = "#" * int(ro / 2e5)
        print(f"  ri {ri / 1e6:4.1f} Mb/s -> L/E[gO] "
              f"{ro / 1e6:4.2f} Mb/s {bar}")
    b_hat = curve.achievable_throughput(tolerance=0.1)
    print(f"  measured achievable throughput (eq. 2): "
          f"{b_hat / 1e6:4.2f} Mb/s (A is {available / 1e6:4.2f} — "
          "no knee there)")

    # 2. Packet pairs: biased toward (above) B, far from C.
    pair = prober.packet_pair_estimate(repetitions=120, seed=2)
    print(f"\nPacket-pair estimate: {pair / 1e6:4.2f} Mb/s "
          f"(capacity is {capacity / 1e6:4.2f}, B is "
          f"{fair_share / 1e6:4.2f}: the pair overestimates B and "
          "never sees C)")

    # 3. Short trains at a high rate, with and without MSER-2.
    rate = 8e6
    raw = prober.dispersion_rate(20, rate, repetitions=60, seed=3)
    fixed = prober.mser_corrected_rate(20, rate, m=2, repetitions=60,
                                       seed=3)
    print(f"\n20-packet trains at {rate / 1e6:.0f} Mb/s:")
    print(f"  raw        L/E[gO] = {raw / 1e6:4.2f} Mb/s")
    print(f"  MSER-2     L/E[gO] = {fixed / 1e6:4.2f} Mb/s")
    print(f"  steady-state value ~ {fair_share / 1e6:4.2f} Mb/s "
          "(the correction removes the transient packets)")


if __name__ == "__main__":
    main()
